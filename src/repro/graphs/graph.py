"""The core graph type used throughout the benchmark.

``Graph`` is a simple (no self-loops, no multi-edges) undirected graph over the
contiguous node-id universe ``0 .. n-1``.  The paper's algorithms need three
different views of a graph — adjacency sets (community detection, BFS),
adjacency matrices (TmF, PrivSKG) and degree sequences (DP-dK, DGG) — so the
class keeps *two* interchangeable representations:

* a **canonical edge array**: an ``(m, 2)`` int64 ndarray with ``u < v`` per
  row, sorted lexicographically.  This is the array layer every vectorized
  code path (bulk construction, CSR conversion, degree computation, subgraph
  extraction) works on, and it is what generators produce so they never pay
  per-edge Python cost;
* **adjacency sets**, materialised lazily, for the incremental mutation API
  (``add_edge`` / ``remove_edge``) and set-based traversals.

Whichever representation exists is authoritative; derived views (edge array,
degrees, CSR adjacency) are memoized and invalidated by a dirty flag whenever
the graph mutates, so repeated conversions of the same graph are free.

Nodes with no incident edges are first-class: the paper's |V| query (Q1)
counts them, and several algorithms (e.g. TmF) produce isolated nodes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

import networkx as nx
import numpy as np
import scipy.sparse as sp

Edge = Tuple[int, int]

_EMPTY_EDGE_ARRAY = np.empty((0, 2), dtype=np.int64)
_EMPTY_EDGE_ARRAY.flags.writeable = False


def _encode_edges(u: np.ndarray, v: np.ndarray, num_nodes: int) -> np.ndarray:
    """Encode canonical pairs (u < v) as scalar codes ``u * n + v``."""
    return u * np.int64(num_nodes) + v


def _decode_edges(codes: np.ndarray, num_nodes: int) -> np.ndarray:
    """Invert :func:`_encode_edges` into an ``(m, 2)`` array."""
    out = np.empty((codes.size, 2), dtype=np.int64)
    np.floor_divide(codes, num_nodes, out=out[:, 0])
    np.mod(codes, num_nodes, out=out[:, 1])
    return out


def _canonical_codes(edges: np.ndarray, num_nodes: int) -> np.ndarray:
    """Unique sorted codes of an arbitrary ``(m, 2)`` int array.

    Self-loops are dropped, (u, v)/(v, u) duplicates collapse onto the
    canonical ``u < v`` orientation, and out-of-range ids raise the same
    ``ValueError`` the scalar API raises.
    """
    if edges.size == 0:
        return np.empty(0, dtype=np.int64)
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    if lo.size and (int(lo.min()) < 0 or int(hi.max()) >= num_nodes):
        bad = int(lo.min()) if int(lo.min()) < 0 else int(hi.max())
        raise ValueError(f"node {bad} outside universe [0, {num_nodes})")
    mask = lo != hi  # drop self-loops, mirroring the scalar add_edges_from
    return np.unique(_encode_edges(lo[mask], hi[mask], num_nodes))


class Graph:
    """Simple undirected graph over nodes ``0 .. num_nodes - 1``.

    Parameters
    ----------
    num_nodes:
        Size of the node universe.  Node ids outside ``[0, num_nodes)`` are
        rejected.
    edges:
        Optional iterable of ``(u, v)`` pairs to add.  Self-loops and duplicate
        edges are rejected by :meth:`add_edge` but silently skipped by
        :meth:`add_edges_from`, which mirrors how edge lists from generators
        are normally consumed.
    """

    __slots__ = ("_num_nodes", "_adjacency", "_num_edges", "_edge_array", "_degrees", "_csr")

    def __init__(self, num_nodes: int, edges: Iterable[Edge] | None = None) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be >= 0, got {num_nodes}")
        self._num_nodes = int(num_nodes)
        self._adjacency: List[Set[int]] | None = None
        self._num_edges = 0
        self._edge_array: np.ndarray | None = _EMPTY_EDGE_ARRAY
        self._degrees: np.ndarray | None = None
        self._csr: sp.csr_matrix | None = None
        if edges is not None:
            self.add_edges_from(edges)

    # -- construction -----------------------------------------------------
    @classmethod
    def from_edge_array(cls, edges: np.ndarray, num_nodes: int | None = None) -> "Graph":
        """Bulk constructor from an ``(m, 2)`` integer array.

        Self-loops are dropped and duplicates (including reversed pairs) are
        deduplicated via encoded-pair ``np.unique`` — no per-edge Python cost.
        ``num_nodes`` is inferred from the largest id when omitted.
        """
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edge array must have shape (m, 2), got {edges.shape}")
        if num_nodes is None:
            num_nodes = int(edges.max()) + 1 if edges.shape[0] else 0
        graph = cls(num_nodes)
        codes = _canonical_codes(edges, graph._num_nodes)
        graph._set_edge_array(_decode_edges(codes, graph._num_nodes))
        return graph

    @classmethod
    def from_canonical_edge_array(cls, edges: np.ndarray, num_nodes: int,
                                  degrees: np.ndarray | None = None,
                                  csr: sp.csr_matrix | None = None) -> "Graph":
        """Trusted zero-copy constructor for an *already canonical* edge array.

        The caller promises ``edges`` is exactly what :meth:`edge_array`
        would return — ``(m, 2)`` int64, ``u < v`` per row, lexicographically
        sorted, deduplicated, ids inside ``[0, num_nodes)`` — e.g. because it
        is another graph's edge array or a shared-memory view of one (the
        shared-memory dataset plane attaches workers this way).  No copy and
        no re-canonicalisation happen; the array (and the optional ``degrees``
        / ``csr`` caches, under the same must-match-the-derived-view promise)
        are installed directly and marked read-only.
        """
        if edges.dtype != np.int64 or edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(
                f"canonical edge array must be (m, 2) int64, got "
                f"{edges.dtype} {edges.shape}"
            )
        graph = cls(num_nodes)
        graph._set_edge_array(edges)
        if degrees is not None:
            degrees.flags.writeable = False
            graph._degrees = degrees
        if csr is not None:
            graph._csr = csr
        return graph

    @classmethod
    def from_networkx(cls, nx_graph: nx.Graph) -> "Graph":
        """Build a :class:`Graph` from a networkx graph, relabelling nodes to 0..n-1."""
        nodes = list(nx_graph.nodes())
        index = {node: position for position, node in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in nx_graph.edges() if u != v]
        return cls.from_edge_array(np.array(edges, dtype=np.int64).reshape(-1, 2), len(nodes))

    @classmethod
    def from_edge_list(cls, edges: Sequence[Edge], num_nodes: int | None = None) -> "Graph":
        """Build a graph from an edge list, inferring ``num_nodes`` when omitted."""
        edges = list(edges)
        if num_nodes is None:
            num_nodes = 1 + max((max(u, v) for u, v in edges), default=-1)
        return cls.from_edge_array(np.array(edges, dtype=np.int64).reshape(-1, 2), num_nodes)

    @classmethod
    def from_adjacency_matrix(cls, matrix: np.ndarray | sp.spmatrix) -> "Graph":
        """Build a graph from a (dense or sparse) symmetric 0/1 adjacency matrix."""
        if sp.issparse(matrix):
            coo = sp.triu(matrix, k=1).tocoo()
            return cls.from_edge_array(
                np.column_stack([coo.row.astype(np.int64), coo.col.astype(np.int64)]),
                matrix.shape[0],
            )
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("adjacency matrix must be square")
        rows, cols = np.nonzero(np.triu(matrix, k=1))
        return cls.from_edge_array(np.column_stack([rows, cols]), matrix.shape[0])

    def copy(self) -> "Graph":
        """Return a deep copy of this graph.

        The canonical edge array is immutable, so it is shared with the copy;
        the first mutation on either side invalidates only that side's caches.
        """
        clone = Graph(self._num_nodes)
        if self._adjacency is not None:
            clone._adjacency = [set(neighbors) for neighbors in self._adjacency]
            clone._edge_array = self._edge_array
        else:
            clone._edge_array = self._edge_array
        clone._num_edges = self._num_edges
        clone._degrees = self._degrees
        clone._csr = self._csr
        return clone

    # -- basic accessors ---------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the universe (isolated nodes included)."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges."""
        return self._num_edges

    def nodes(self) -> range:
        """Iterate over node ids."""
        return range(self._num_nodes)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges as ``(u, v)`` with ``u < v``, in canonical order."""
        for u, v in self.edge_array().tolist():
            yield (u, v)

    def edge_array(self) -> np.ndarray:
        """Canonical ``(m, 2)`` int64 edge array with ``u < v``, lexicographically sorted.

        The returned array is memoized and marked read-only — copy before
        mutating.  This is the entry point of the vectorized layer: degrees,
        CSR conversion, subgraphs and the algorithms' hot loops all derive
        from it without per-edge Python iteration.
        """
        if self._edge_array is None:
            us: List[int] = []
            vs: List[int] = []
            assert self._adjacency is not None
            for u, neighbors in enumerate(self._adjacency):
                for v in neighbors:
                    if u < v:
                        us.append(u)
                        vs.append(v)
            arr = np.column_stack([
                np.asarray(us, dtype=np.int64),
                np.asarray(vs, dtype=np.int64),
            ]) if us else _EMPTY_EDGE_ARRAY.copy()
            if arr.shape[0]:
                order = np.lexsort((arr[:, 1], arr[:, 0]))
                arr = arr[order]
            arr.flags.writeable = False
            self._edge_array = arr
        return self._edge_array

    def edge_set(self) -> Set[Edge]:
        """Return the edge set as a set of ``(u, v)`` with ``u < v``."""
        return set(self.edges())

    def has_edge(self, u: int, v: int) -> bool:
        """Return True when edge ``(u, v)`` exists."""
        self._check_node(u)
        self._check_node(v)
        return v in self._ensure_adjacency()[u]

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        self._check_node(node)
        if self._adjacency is not None:
            # O(1) from the authoritative sets — callers that interleave
            # mutation with degree reads (DP-dK's rewiring) must not trigger
            # an edge-array rebuild per read.
            return len(self._adjacency[node])
        return int(self._degree_cache()[node])

    def degrees(self) -> np.ndarray:
        """Degrees of all nodes as an int array indexed by node id."""
        return self._degree_cache().copy()

    def neighbors(self, node: int) -> Iterator[int]:
        """Iterate over the neighbours of ``node``."""
        self._check_node(node)
        return iter(self._ensure_adjacency()[node])

    def neighbor_set(self, node: int) -> Set[int]:
        """Return a copy of the neighbour set of ``node``."""
        self._check_node(node)
        return set(self._ensure_adjacency()[node])

    # -- mutation ----------------------------------------------------------
    def add_edge(self, u: int, v: int, allow_existing: bool = False) -> None:
        """Add edge ``(u, v)``.

        Raises on self-loops; raises on duplicate edges unless
        ``allow_existing`` is true.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u})")
        adjacency = self._ensure_adjacency()
        if v in adjacency[u]:
            if allow_existing:
                return
            raise ValueError(f"edge ({u}, {v}) already exists")
        adjacency[u].add(v)
        adjacency[v].add(u)
        self._num_edges += 1
        self._invalidate()

    def add_edges_from(self, edges: Iterable[Edge]) -> int:
        """Add edges, skipping self-loops and duplicates; return how many were added.

        ndarray input takes the vectorized path: the new pairs are
        canonicalised, deduplicated against the existing edge set with an
        encoded-pair ``np.unique``, and merged without per-edge Python work.
        """
        if isinstance(edges, np.ndarray):
            return self._add_edge_array(edges)
        added = 0
        adjacency = self._ensure_adjacency()
        before = self._num_edges
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v:
                continue
            self._check_node(u)
            self._check_node(v)
            if v in adjacency[u]:
                continue
            adjacency[u].add(v)
            adjacency[v].add(u)
            self._num_edges += 1
        added = self._num_edges - before
        if added:
            self._invalidate()
        return added

    def remove_edge(self, u: int, v: int) -> None:
        """Remove edge ``(u, v)``; raises if it does not exist."""
        self._check_node(u)
        self._check_node(v)
        adjacency = self._ensure_adjacency()
        if v not in adjacency[u]:
            raise ValueError(f"edge ({u}, {v}) does not exist")
        adjacency[u].discard(v)
        adjacency[v].discard(u)
        self._num_edges -= 1
        self._invalidate()

    # -- conversions --------------------------------------------------------
    def to_networkx(self) -> nx.Graph:
        """Convert to a networkx graph (all nodes included, even isolated ones)."""
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self._num_nodes))
        nx_graph.add_edges_from(self.edge_array().tolist())
        return nx_graph

    def to_adjacency_matrix(self, dtype=np.int8) -> np.ndarray:
        """Dense symmetric adjacency matrix; only safe for small/medium graphs."""
        matrix = np.zeros((self._num_nodes, self._num_nodes), dtype=dtype)
        arr = self.edge_array()
        matrix[arr[:, 0], arr[:, 1]] = 1
        matrix[arr[:, 1], arr[:, 0]] = 1
        return matrix

    def to_sparse_adjacency(self) -> sp.csr_matrix:
        """Sparse CSR adjacency matrix (memoized; treat as read-only)."""
        if self._csr is None:
            arr = self.edge_array()
            rows = np.concatenate([arr[:, 0], arr[:, 1]])
            cols = np.concatenate([arr[:, 1], arr[:, 0]])
            data = np.ones(rows.size, dtype=np.int8)
            self._csr = sp.csr_matrix(
                (data, (rows, cols)), shape=(self._num_nodes, self._num_nodes)
            )
        return self._csr

    def adjacency_lists(self) -> List[Set[int]]:
        """Return (copies of) the adjacency sets, indexed by node id."""
        return [set(neighbors) for neighbors in self._ensure_adjacency()]

    def subgraph(self, nodes: Sequence[int]) -> "Graph":
        """Induced subgraph on ``nodes``, relabelled to ``0..len(nodes)-1``."""
        nodes = list(nodes)
        mapping = np.full(self._num_nodes, -1, dtype=np.int64)
        node_arr = np.asarray(nodes, dtype=np.int64)
        if node_arr.size and (int(node_arr.min()) < 0 or int(node_arr.max()) >= self._num_nodes):
            raise ValueError(f"subgraph nodes outside universe [0, {self._num_nodes})")
        mapping[node_arr] = np.arange(node_arr.size, dtype=np.int64)
        arr = self.edge_array()
        mu = mapping[arr[:, 0]]
        mv = mapping[arr[:, 1]]
        keep = (mu >= 0) & (mv >= 0)
        return Graph.from_edge_array(np.column_stack([mu[keep], mv[keep]]), len(nodes))

    # -- dunder helpers ------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._num_nodes == other._num_nodes and np.array_equal(
            self.edge_array(), other.edge_array()
        )

    def __hash__(self) -> int:  # graphs are mutable; identity hash keeps them usable in ids
        return id(self)

    def __repr__(self) -> str:
        return f"Graph(num_nodes={self._num_nodes}, num_edges={self._num_edges})"

    def __reduce__(self):
        # Pickle as (n, edge array): orders of magnitude smaller and faster to
        # rebuild than adjacency sets — this is what the parallel benchmark
        # runner ships to worker processes.
        return (Graph.from_edge_array, (np.asarray(self.edge_array()), self._num_nodes))

    # -- internals -----------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise ValueError(f"node {node} outside universe [0, {self._num_nodes})")

    def _set_edge_array(self, arr: np.ndarray) -> None:
        """Install a canonical (deduped, sorted) edge array as the edge store."""
        arr.flags.writeable = False
        self._edge_array = arr
        self._adjacency = None
        self._num_edges = int(arr.shape[0])
        self._degrees = None
        self._csr = None

    def _ensure_adjacency(self) -> List[Set[int]]:
        """Materialise adjacency sets from the edge array on first set-based access."""
        if self._adjacency is None:
            adjacency: List[Set[int]] = [set() for _ in range(self._num_nodes)]
            assert self._edge_array is not None
            for u, v in self._edge_array.tolist():
                adjacency[u].add(v)
                adjacency[v].add(u)
            self._adjacency = adjacency
        return self._adjacency

    def _degree_cache(self) -> np.ndarray:
        if self._degrees is None:
            if self._edge_array is None:
                # Adjacency is authoritative and the array cache is dirty:
                # count set sizes (O(n)) instead of forcing the O(m log m)
                # canonical-array rebuild just for degrees.
                assert self._adjacency is not None
                degrees = np.fromiter(
                    (len(neighbors) for neighbors in self._adjacency),
                    dtype=np.int64, count=self._num_nodes,
                )
            else:
                degrees = np.bincount(self._edge_array.ravel(), minlength=self._num_nodes)
            degrees.flags.writeable = False
            self._degrees = degrees
        return self._degrees

    def _invalidate(self) -> None:
        """Drop memoized views after a mutation (adjacency sets stay authoritative)."""
        self._edge_array = None
        self._degrees = None
        self._csr = None

    def _add_edge_array(self, edges: np.ndarray) -> int:
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            return 0
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edge array must have shape (m, 2), got {edges.shape}")
        new_codes = _canonical_codes(edges, self._num_nodes)
        arr = self.edge_array()
        old_codes = _encode_edges(arr[:, 0], arr[:, 1], self._num_nodes)
        merged = np.union1d(old_codes, new_codes)
        added = int(merged.size - old_codes.size)
        if added:
            self._set_edge_array(_decode_edges(merged, self._num_nodes))
        return added


__all__ = ["Graph", "Edge"]
