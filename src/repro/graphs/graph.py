"""The core graph type used throughout the benchmark.

``Graph`` is a simple (no self-loops, no multi-edges) undirected graph over the
contiguous node-id universe ``0 .. n-1``.  The paper's algorithms need three
different views of a graph — adjacency sets (community detection, BFS),
adjacency matrices (TmF, PrivSKG) and degree sequences (DP-dK, DGG) — so the
class keeps the adjacency-set representation as the source of truth and
converts lazily to numpy / scipy / networkx when a substrate requires it.

Nodes with no incident edges are first-class: the paper's |V| query (Q1)
counts them, and several algorithms (e.g. TmF) produce isolated nodes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

import networkx as nx
import numpy as np
import scipy.sparse as sp

Edge = Tuple[int, int]


class Graph:
    """Simple undirected graph over nodes ``0 .. num_nodes - 1``.

    Parameters
    ----------
    num_nodes:
        Size of the node universe.  Node ids outside ``[0, num_nodes)`` are
        rejected.
    edges:
        Optional iterable of ``(u, v)`` pairs to add.  Self-loops and duplicate
        edges are rejected by :meth:`add_edge` but silently skipped by
        :meth:`add_edges_from`, which mirrors how edge lists from generators
        are normally consumed.
    """

    __slots__ = ("_num_nodes", "_adjacency", "_num_edges")

    def __init__(self, num_nodes: int, edges: Iterable[Edge] | None = None) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be >= 0, got {num_nodes}")
        self._num_nodes = int(num_nodes)
        self._adjacency: List[Set[int]] = [set() for _ in range(self._num_nodes)]
        self._num_edges = 0
        if edges is not None:
            self.add_edges_from(edges)

    # -- construction -----------------------------------------------------
    @classmethod
    def from_networkx(cls, nx_graph: nx.Graph) -> "Graph":
        """Build a :class:`Graph` from a networkx graph, relabelling nodes to 0..n-1."""
        nodes = list(nx_graph.nodes())
        index = {node: position for position, node in enumerate(nodes)}
        graph = cls(len(nodes))
        for u, v in nx_graph.edges():
            if u == v:
                continue
            graph.add_edge(index[u], index[v], allow_existing=True)
        return graph

    @classmethod
    def from_edge_list(cls, edges: Sequence[Edge], num_nodes: int | None = None) -> "Graph":
        """Build a graph from an edge list, inferring ``num_nodes`` when omitted."""
        edges = list(edges)
        if num_nodes is None:
            num_nodes = 1 + max((max(u, v) for u, v in edges), default=-1)
        graph = cls(num_nodes)
        graph.add_edges_from(edges)
        return graph

    @classmethod
    def from_adjacency_matrix(cls, matrix: np.ndarray | sp.spmatrix) -> "Graph":
        """Build a graph from a (dense or sparse) symmetric 0/1 adjacency matrix."""
        if sp.issparse(matrix):
            coo = sp.triu(matrix, k=1).tocoo()
            num_nodes = matrix.shape[0]
            edges = zip(coo.row.tolist(), coo.col.tolist())
            return cls(num_nodes, ((int(u), int(v)) for u, v in edges))
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("adjacency matrix must be square")
        rows, cols = np.nonzero(np.triu(matrix, k=1))
        return cls(matrix.shape[0], zip(rows.tolist(), cols.tolist()))

    def copy(self) -> "Graph":
        """Return a deep copy of this graph."""
        clone = Graph(self._num_nodes)
        clone._adjacency = [set(neighbors) for neighbors in self._adjacency]
        clone._num_edges = self._num_edges
        return clone

    # -- basic accessors ---------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the universe (isolated nodes included)."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges."""
        return self._num_edges

    def nodes(self) -> range:
        """Iterate over node ids."""
        return range(self._num_nodes)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges as ``(u, v)`` with ``u < v``."""
        for u, neighbors in enumerate(self._adjacency):
            for v in neighbors:
                if u < v:
                    yield (u, v)

    def edge_set(self) -> Set[Edge]:
        """Return the edge set as a set of ``(u, v)`` with ``u < v``."""
        return set(self.edges())

    def has_edge(self, u: int, v: int) -> bool:
        """Return True when edge ``(u, v)`` exists."""
        self._check_node(u)
        self._check_node(v)
        return v in self._adjacency[u]

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        self._check_node(node)
        return len(self._adjacency[node])

    def degrees(self) -> np.ndarray:
        """Degrees of all nodes as an int array indexed by node id."""
        return np.array([len(neighbors) for neighbors in self._adjacency], dtype=np.int64)

    def neighbors(self, node: int) -> Iterator[int]:
        """Iterate over the neighbours of ``node``."""
        self._check_node(node)
        return iter(self._adjacency[node])

    def neighbor_set(self, node: int) -> Set[int]:
        """Return a copy of the neighbour set of ``node``."""
        self._check_node(node)
        return set(self._adjacency[node])

    # -- mutation ----------------------------------------------------------
    def add_edge(self, u: int, v: int, allow_existing: bool = False) -> None:
        """Add edge ``(u, v)``.

        Raises on self-loops; raises on duplicate edges unless
        ``allow_existing`` is true.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u})")
        if v in self._adjacency[u]:
            if allow_existing:
                return
            raise ValueError(f"edge ({u}, {v}) already exists")
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._num_edges += 1

    def add_edges_from(self, edges: Iterable[Edge]) -> int:
        """Add edges, skipping self-loops and duplicates; return how many were added."""
        added = 0
        before = self._num_edges
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v:
                continue
            self._check_node(u)
            self._check_node(v)
            if v in self._adjacency[u]:
                continue
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)
            self._num_edges += 1
        added = self._num_edges - before
        return added

    def remove_edge(self, u: int, v: int) -> None:
        """Remove edge ``(u, v)``; raises if it does not exist."""
        self._check_node(u)
        self._check_node(v)
        if v not in self._adjacency[u]:
            raise ValueError(f"edge ({u}, {v}) does not exist")
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._num_edges -= 1

    # -- conversions --------------------------------------------------------
    def to_networkx(self) -> nx.Graph:
        """Convert to a networkx graph (all nodes included, even isolated ones)."""
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self._num_nodes))
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    def to_adjacency_matrix(self, dtype=np.int8) -> np.ndarray:
        """Dense symmetric adjacency matrix; only safe for small/medium graphs."""
        matrix = np.zeros((self._num_nodes, self._num_nodes), dtype=dtype)
        for u, v in self.edges():
            matrix[u, v] = 1
            matrix[v, u] = 1
        return matrix

    def to_sparse_adjacency(self) -> sp.csr_matrix:
        """Sparse CSR adjacency matrix."""
        rows: List[int] = []
        cols: List[int] = []
        for u, v in self.edges():
            rows.extend((u, v))
            cols.extend((v, u))
        data = np.ones(len(rows), dtype=np.int8)
        return sp.csr_matrix((data, (rows, cols)), shape=(self._num_nodes, self._num_nodes))

    def adjacency_lists(self) -> List[Set[int]]:
        """Return (copies of) the adjacency sets, indexed by node id."""
        return [set(neighbors) for neighbors in self._adjacency]

    def subgraph(self, nodes: Sequence[int]) -> "Graph":
        """Induced subgraph on ``nodes``, relabelled to ``0..len(nodes)-1``."""
        nodes = list(nodes)
        index: Dict[int, int] = {node: position for position, node in enumerate(nodes)}
        sub = Graph(len(nodes))
        node_set = set(nodes)
        for u in nodes:
            for v in self._adjacency[u]:
                if v in node_set and u < v:
                    sub.add_edge(index[u], index[v], allow_existing=True)
        return sub

    # -- dunder helpers ------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._num_nodes == other._num_nodes and self.edge_set() == other.edge_set()

    def __hash__(self) -> int:  # graphs are mutable; identity hash keeps them usable in ids
        return id(self)

    def __repr__(self) -> str:
        return f"Graph(num_nodes={self._num_nodes}, num_edges={self._num_edges})"

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise ValueError(f"node {node} outside universe [0, {self._num_nodes})")


__all__ = ["Graph", "Edge"]
