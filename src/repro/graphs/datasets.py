"""Dataset registry for the G element of the benchmark (paper Table VI).

Each entry records the published statistics of the original dataset (node
count, edge count, average clustering coefficient, domain type) and a loader
that produces the synthetic stand-in at a requested ``scale``.  Loading is
cached per (name, scale, seed) because several benchmark tables iterate over
the same datasets many times.

If a user has the original SNAP / NetworkRepository edge lists they can load
them with :func:`repro.graphs.io.read_edge_list` and pass the graphs to the
benchmark directly; the registry exists so the repository is runnable offline.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.graphs import synth
from repro.graphs.graph import Graph
from repro.graphs.io import PathLike, read_edge_list_streamed
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class DatasetInfo:
    """Metadata for one benchmark dataset (one row of Table VI)."""

    name: str
    domain: str
    paper_num_nodes: int
    paper_num_edges: int
    paper_acc: float
    description: str
    loader: Callable[[float, int], Graph]

    def load(self, scale: float = 1.0, seed: int = 0) -> Graph:
        """Build the stand-in graph at ``scale`` with a fixed ``seed``."""
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        return self.loader(scale, seed)


def _loader(factory: Callable, **fixed) -> Callable[[float, int], Graph]:
    def load(scale: float, seed: int) -> Graph:
        return factory(scale=scale, rng=ensure_rng(seed), **fixed)

    return load


_REGISTRY: Dict[str, DatasetInfo] = {}


def _register(info: DatasetInfo) -> None:
    _REGISTRY[info.name] = info


_register(
    DatasetInfo(
        name="minnesota",
        domain="traffic",
        paper_num_nodes=2640,
        paper_num_edges=3302,
        paper_acc=0.0160,
        description="Minnesota road network (lattice-like planar graph).",
        loader=_loader(synth.road_network),
    )
)
_register(
    DatasetInfo(
        name="facebook",
        domain="social",
        paper_num_nodes=4039,
        paper_num_edges=88234,
        paper_acc=0.6055,
        description="Union of Facebook ego-networks (dense overlapping communities).",
        loader=_loader(synth.social_community_graph),
    )
)
_register(
    DatasetInfo(
        name="wiki-vote",
        domain="web",
        paper_num_nodes=7115,
        paper_num_edges=103689,
        paper_acc=0.1409,
        description="Wikipedia adminship votes (core-periphery structure).",
        loader=_loader(synth.core_periphery_graph),
    )
)
_register(
    DatasetInfo(
        name="ca-hepph",
        domain="academic",
        paper_num_nodes=12008,
        paper_num_edges=118521,
        paper_acc=0.6115,
        description="High-energy-physics collaboration graph (union of author cliques).",
        loader=_loader(synth.collaboration_graph),
    )
)
_register(
    DatasetInfo(
        name="poli-large",
        domain="financial",
        paper_num_nodes=15575,
        paper_num_edges=17468,
        paper_acc=0.3967,
        description="Economic/financial network (very sparse, locally clustered).",
        loader=_loader(synth.sparse_economic_graph),
    )
)
_register(
    DatasetInfo(
        name="gnutella",
        domain="technology",
        paper_num_nodes=22687,
        paper_num_edges=54705,
        paper_acc=0.0053,
        description="Gnutella peer-to-peer overlay snapshot (near-zero clustering).",
        loader=_loader(synth.peer_to_peer_graph),
    )
)
_register(
    DatasetInfo(
        name="er",
        domain="synthetic",
        paper_num_nodes=10000,
        paper_num_edges=250278,
        paper_acc=0.0050,
        description="Erdős–Rényi G(n, m) graph used by the paper (binomial degrees).",
        loader=_loader(synth.er_benchmark_graph),
    )
)
_register(
    DatasetInfo(
        name="ba",
        domain="synthetic",
        paper_num_nodes=10000,
        paper_num_edges=49975,
        paper_acc=0.0074,
        description="Barabási–Albert graph used by the paper (power-law degrees).",
        loader=_loader(synth.ba_benchmark_graph),
    )
)
_register(
    DatasetInfo(
        name="ca-grqc",
        domain="academic",
        paper_num_nodes=5242,
        paper_num_edges=14484,
        paper_acc=0.529,
        description="CA-GrQc collaboration graph used only by the verification appendix.",
        loader=_loader(synth.grqc_like_graph),
    )
)

#: The eight datasets that make up the G element of the PGB benchmark proper.
PGB_DATASET_NAMES: Tuple[str, ...] = (
    "minnesota",
    "facebook",
    "wiki-vote",
    "ca-hepph",
    "poli-large",
    "gnutella",
    "er",
    "ba",
)


def list_datasets(include_verification: bool = False) -> List[str]:
    """Names of available datasets; the CA-GrQc stand-in is verification-only."""
    names = list(PGB_DATASET_NAMES)
    if include_verification:
        names.append("ca-grqc")
    return names


def get_dataset(name: str) -> DatasetInfo:
    """Look up a dataset by name (case-insensitive)."""
    key = name.lower()
    if key not in _REGISTRY:
        available = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown dataset {name!r}; available: {available}")
    return _REGISTRY[key]


def register_edge_list_dataset(name: str, path: PathLike, domain: str = "user",
                               description: str = "", acc: float = float("nan"),
                               overwrite: bool = False) -> DatasetInfo:
    """Register an edge-list file as a loadable dataset.

    The file is read once, with the streamed chunked reader
    (:func:`repro.graphs.io.read_edge_list_streamed`, so million-edge files
    work), and served from memory afterwards; ``scale`` requests below 1.0
    are served as the induced subgraph on the first ``round(n * scale)``
    node ids — deterministic, so the ``seed`` argument is ignored for file
    datasets.  Registered names are case-insensitive like the built-ins and
    refuse to shadow an existing dataset unless ``overwrite`` is set.
    """
    graph = read_edge_list_streamed(path)

    def load(scale: float, seed: int) -> Graph:
        if scale >= 1.0:
            return graph
        keep = max(int(round(graph.num_nodes * scale)), 1)
        return graph.subgraph(range(keep))

    info = DatasetInfo(
        name=name.lower(),
        domain=domain,
        paper_num_nodes=graph.num_nodes,
        paper_num_edges=graph.num_edges,
        paper_acc=acc,
        description=description or f"user edge list loaded from {path}",
        loader=load,
    )
    if info.name in _REGISTRY and not overwrite:
        raise ValueError(f"dataset {name!r} is already registered")
    _register(info)
    return info


#: Bounded LRU over loaded graphs.  The bound is explicit (unlike the old
#: ``functools.lru_cache``) because at million-node scale each cached graph
#: is tens of megabytes: a sweep over many (scale, seed) points must recycle
#: memory instead of accumulating every variant ever loaded.
_CACHE: "OrderedDict[Tuple[str, float, int], Graph]" = OrderedDict()
_CACHE_LOCK = threading.Lock()
_cache_maxsize: int = 16
_cache_hits: int = 0
_cache_misses: int = 0


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> Graph:
    """Load (and cache) the stand-in graph for ``name`` at the requested scale."""
    key = (name.lower(), float(scale), int(seed))
    global _cache_hits, _cache_misses
    with _CACHE_LOCK:
        if key in _CACHE:
            _CACHE.move_to_end(key)
            _cache_hits += 1
            return _CACHE[key]
        _cache_misses += 1
    graph = get_dataset(name).load(scale=scale, seed=seed)
    with _CACHE_LOCK:
        _CACHE[key] = graph
        _CACHE.move_to_end(key)
        while len(_CACHE) > _cache_maxsize:
            _CACHE.popitem(last=False)
    return graph


def dataset_cache_info() -> Dict[str, int]:
    """Current size, bound and hit/miss counters of the dataset cache."""
    with _CACHE_LOCK:
        return {
            "size": len(_CACHE),
            "maxsize": _cache_maxsize,
            "hits": _cache_hits,
            "misses": _cache_misses,
        }


def configure_dataset_cache(maxsize: int) -> None:
    """Change the dataset-cache bound, evicting least-recently-used overflow."""
    if maxsize < 1:
        raise ValueError(f"maxsize must be >= 1, got {maxsize}")
    global _cache_maxsize
    with _CACHE_LOCK:
        _cache_maxsize = maxsize
        while len(_CACHE) > _cache_maxsize:
            _CACHE.popitem(last=False)


def clear_dataset_cache() -> None:
    """Drop every cached graph and reset the hit/miss counters."""
    global _cache_hits, _cache_misses
    with _CACHE_LOCK:
        _CACHE.clear()
        _cache_hits = 0
        _cache_misses = 0


__all__ = [
    "DatasetInfo",
    "PGB_DATASET_NAMES",
    "clear_dataset_cache",
    "configure_dataset_cache",
    "dataset_cache_info",
    "list_datasets",
    "get_dataset",
    "load_dataset",
    "register_edge_list_dataset",
]
