"""Asynchronous label propagation (Raghavan et al. 2007).

A fast, parameter-free community detector used by the test-suite as an
independent cross-check of Louvain and available to users as a lighter-weight
choice for the CD query on very large graphs.
"""

from __future__ import annotations

from collections import Counter

from repro.community.partition import Partition
from repro.graphs.graph import Graph
from repro.utils.rng import RngLike, ensure_rng


def label_propagation_communities(graph: Graph, max_iterations: int = 50,
                                  rng: RngLike = None) -> Partition:
    """Detect communities by iteratively adopting the most common neighbour label.

    Ties are broken uniformly at random; iteration stops when every node
    already carries one of the most frequent labels of its neighbourhood or
    when ``max_iterations`` is reached.
    """
    generator = ensure_rng(rng)
    n = graph.num_nodes
    labels = list(range(n))
    if n == 0 or graph.num_edges == 0:
        return Partition(labels)

    adjacency = graph.adjacency_lists()
    order = list(range(n))
    for _ in range(max_iterations):
        generator.shuffle(order)
        changed = False
        for node in order:
            if not adjacency[node]:
                continue
            counts = Counter(labels[neighbor] for neighbor in adjacency[node])
            best_count = max(counts.values())
            best_labels = [label for label, count in counts.items() if count == best_count]
            if labels[node] in best_labels:
                continue
            labels[node] = int(best_labels[int(generator.integers(0, len(best_labels)))])
            changed = True
        if not changed:
            break
    return Partition(labels)


__all__ = ["label_propagation_communities"]
