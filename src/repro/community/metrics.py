"""Partition-similarity metrics (paper Table IV, metrics E6 and E9–E11).

The community-detection query (Q12) is scored by comparing the partition of
the true graph with the partition of the synthetic graph.  The paper's
literature survey uses four scores, all implemented here from their
definitions (no sklearn dependency):

* **NMI** — normalized mutual information (arithmetic normalisation);
* **ARI** — adjusted Rand index;
* **AMI** — adjusted mutual information (expected MI under the permutation
  model, Vinh et al. 2009);
* **average F1** — mean of the best-match F1 scores in both directions.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy.special import gammaln

from repro.community.partition import Partition


def _as_labels(partition: "Partition | Sequence[int]") -> np.ndarray:
    if isinstance(partition, Partition):
        return partition.labels
    return Partition(list(partition)).labels


def contingency_table(first, second) -> np.ndarray:
    """Contingency matrix ``N[i, j]`` = number of nodes in community i of the
    first partition and community j of the second.

    Tallied as one ``np.bincount`` over flattened pair codes — this sits on
    the hot path of the community query Q12 (NMI/AMI/ARI all start here), so
    no per-node Python.
    """
    labels_a = _as_labels(first)
    labels_b = _as_labels(second)
    if labels_a.size != labels_b.size:
        raise ValueError("partitions must cover the same number of nodes")
    rows = int(labels_a.max()) + 1 if labels_a.size else 0
    cols = int(labels_b.max()) + 1 if labels_b.size else 0
    if rows == 0 or cols == 0:
        return np.zeros((rows, cols), dtype=np.int64)
    codes = labels_a * np.int64(cols) + labels_b
    return np.bincount(codes, minlength=rows * cols).reshape(rows, cols)


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    probabilities = counts[counts > 0] / total
    return float(-(probabilities * np.log(probabilities)).sum())


def mutual_information(first, second) -> float:
    """Mutual information (in nats) between two partitions."""
    table = contingency_table(first, second)
    n = table.sum()
    if n == 0:
        return 0.0
    joint = table / n
    row = joint.sum(axis=1, keepdims=True)
    col = joint.sum(axis=0, keepdims=True)
    mask = joint > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(mask, joint * np.log(joint / (row @ col)), 0.0)
    return float(terms.sum())


def normalized_mutual_information(first, second) -> float:
    """NMI with arithmetic-mean normalisation; 1.0 for identical partitions."""
    labels_a = _as_labels(first)
    labels_b = _as_labels(second)
    h_a = _entropy(np.bincount(labels_a)) if labels_a.size else 0.0
    h_b = _entropy(np.bincount(labels_b)) if labels_b.size else 0.0
    if h_a == 0.0 and h_b == 0.0:
        return 1.0
    mi = mutual_information(first, second)
    denominator = 0.5 * (h_a + h_b)
    if denominator == 0.0:
        return 0.0
    return float(np.clip(mi / denominator, 0.0, 1.0))


def adjusted_rand_index(first, second) -> float:
    """ARI: Rand index corrected for chance; 1.0 for identical partitions."""
    table = contingency_table(first, second)
    n = table.sum()
    if n < 2:
        return 1.0

    def comb2(values: np.ndarray) -> float:
        values = values.astype(np.float64)
        return float((values * (values - 1) / 2.0).sum())

    sum_ij = comb2(table.flatten())
    sum_a = comb2(table.sum(axis=1))
    sum_b = comb2(table.sum(axis=0))
    total = n * (n - 1) / 2.0
    expected = sum_a * sum_b / total
    maximum = 0.5 * (sum_a + sum_b)
    if maximum == expected:
        return 1.0
    return float((sum_ij - expected) / (maximum - expected))


def _expected_mutual_information(table: np.ndarray) -> float:
    """Expected MI under the hypergeometric (permutation) model (Vinh et al.)."""
    n = int(table.sum())
    if n == 0:
        return 0.0
    row_sums = table.sum(axis=1).astype(np.int64)
    col_sums = table.sum(axis=0).astype(np.int64)
    emi = 0.0
    for a in row_sums:
        if a == 0:
            continue
        for b in col_sums:
            if b == 0:
                continue
            nij_min = max(1, a + b - n)
            nij_max = min(a, b)
            for nij in range(nij_min, nij_max + 1):
                # log of the hypergeometric probability of observing nij.
                log_prob = (
                    gammaln(a + 1) + gammaln(b + 1) + gammaln(n - a + 1) + gammaln(n - b + 1)
                    - gammaln(n + 1) - gammaln(nij + 1) - gammaln(a - nij + 1)
                    - gammaln(b - nij + 1) - gammaln(n - a - b + nij + 1)
                )
                emi += (nij / n) * math.log(n * nij / (a * b)) * math.exp(log_prob)
    return emi


def adjusted_mutual_information(first, second) -> float:
    """AMI with arithmetic-mean normalisation; 1.0 for identical partitions.

    The expected-MI term is O(k_a · k_b · n) in the worst case, so the
    benchmark only computes AMI on the (already coarse) community partitions,
    exactly as the surveyed algorithms do.
    """
    table = contingency_table(first, second)
    labels_a = _as_labels(first)
    labels_b = _as_labels(second)
    h_a = _entropy(np.bincount(labels_a)) if labels_a.size else 0.0
    h_b = _entropy(np.bincount(labels_b)) if labels_b.size else 0.0
    if h_a == 0.0 and h_b == 0.0:
        return 1.0
    mi = mutual_information(first, second)
    emi = _expected_mutual_information(table)
    denominator = 0.5 * (h_a + h_b) - emi
    if abs(denominator) < 1e-15:
        return 0.0
    return float((mi - emi) / denominator)


def average_f1_score(first, second) -> float:
    """Average of the two directed best-match F1 scores between community sets."""
    communities_a = (first if isinstance(first, Partition) else Partition(list(first))).communities()
    communities_b = (second if isinstance(second, Partition) else Partition(list(second))).communities()
    if not communities_a and not communities_b:
        return 1.0
    if not communities_a or not communities_b:
        return 0.0

    sets_a = [set(c) for c in communities_a]
    sets_b = [set(c) for c in communities_b]

    def best_f1(source, targets) -> float:
        scores = []
        for community in source:
            best = 0.0
            for other in targets:
                overlap = len(community & other)
                if overlap == 0:
                    continue
                precision = overlap / len(other)
                recall = overlap / len(community)
                best = max(best, 2 * precision * recall / (precision + recall))
            scores.append(best)
        return float(np.mean(scores)) if scores else 0.0

    return 0.5 * (best_f1(sets_a, sets_b) + best_f1(sets_b, sets_a))


__all__ = [
    "contingency_table",
    "mutual_information",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "adjusted_mutual_information",
    "average_f1_score",
]
