"""Partition value object and modularity.

A :class:`Partition` assigns every node of a graph to exactly one community.
It is the common currency between the community-detection algorithms, the
CD/Modularity queries and the partition-similarity metrics.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np

from repro.graphs.graph import Graph


class Partition:
    """A labelling of nodes ``0..n-1`` into communities.

    Community labels are arbitrary hashables on input and are normalised to
    contiguous integers ``0..k-1``.
    """

    def __init__(self, labels: Sequence) -> None:
        if isinstance(labels, np.ndarray) and labels.dtype.kind in "iu":
            # Vectorized first-occurrence normalisation (identical to the
            # scalar dict walk below): ranking the distinct labels by where
            # they first appear reproduces insertion order.
            flat = labels.ravel()
            _, first_index, inverse = np.unique(
                flat, return_index=True, return_inverse=True
            )
            rank_by_first = np.argsort(np.argsort(first_index))
            self._labels = rank_by_first[inverse].astype(np.int64)
            return
        labels = list(labels)
        distinct = {}
        normalised = np.empty(len(labels), dtype=np.int64)
        for index, label in enumerate(labels):
            if label not in distinct:
                distinct[label] = len(distinct)
            normalised[index] = distinct[label]
        self._labels = normalised

    @classmethod
    def from_communities(cls, communities: Iterable[Iterable[int]], num_nodes: int) -> "Partition":
        """Build a partition from an iterable of node groups.

        Nodes not covered by any group each get their own singleton community.
        """
        labels = [-1] * num_nodes
        for community_id, members in enumerate(communities):
            for node in members:
                labels[node] = community_id
        next_label = max(labels) + 1 if labels else 0
        for node, label in enumerate(labels):
            if label < 0:
                labels[node] = next_label
                next_label += 1
        return cls(labels)

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, int], num_nodes: int) -> "Partition":
        """Build a partition from a node → community dict."""
        labels = [mapping.get(node, -1) for node in range(num_nodes)]
        missing = [index for index, label in enumerate(labels) if label == -1]
        next_label = (max((label for label in labels if label >= 0), default=-1)) + 1
        for node in missing:
            labels[node] = next_label
            next_label += 1
        return cls(labels)

    @property
    def labels(self) -> np.ndarray:
        """Community label of each node (contiguous integers starting at 0)."""
        return self._labels.copy()

    @property
    def num_nodes(self) -> int:
        """Number of nodes covered by the partition."""
        return int(self._labels.size)

    @property
    def num_communities(self) -> int:
        """Number of distinct communities."""
        if self._labels.size == 0:
            return 0
        return int(self._labels.max()) + 1

    def communities(self) -> List[List[int]]:
        """Communities as lists of node ids, ordered by community label."""
        groups: Dict[int, List[int]] = defaultdict(list)
        for node, label in enumerate(self._labels):
            groups[int(label)].append(node)
        return [groups[label] for label in sorted(groups)]

    def community_of(self, node: int) -> int:
        """Community label of ``node``."""
        return int(self._labels[node])

    def sizes(self) -> np.ndarray:
        """Community sizes indexed by community label."""
        return np.bincount(self._labels, minlength=self.num_communities)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return np.array_equal(self._labels, other._labels)

    def __repr__(self) -> str:
        return f"Partition(num_nodes={self.num_nodes}, num_communities={self.num_communities})"


def modularity(graph: Graph, partition: Partition, resolution: float = 1.0) -> float:
    """Newman modularity Q of ``partition`` on ``graph``.

    ``Q = Σ_c (e_c / m - resolution · (deg_c / 2m)²)`` where e_c is the number
    of intra-community edges and deg_c the total degree of community c.

    Both per-community tallies are ``np.bincount`` calls over label arrays —
    no per-edge Python.  The retained scalar version (:func:`_modularity_scalar`)
    is the equivalence-test reference.
    """
    if partition.num_nodes != graph.num_nodes:
        raise ValueError(
            f"partition covers {partition.num_nodes} nodes but graph has {graph.num_nodes}"
        )
    m = graph.num_edges
    if m == 0:
        return 0.0
    labels = partition.labels
    k = partition.num_communities
    edges = graph.edge_array()
    endpoint_labels = labels[edges[:, 0]]
    intra_mask = endpoint_labels == labels[edges[:, 1]]
    intra = np.bincount(endpoint_labels[intra_mask], minlength=k).astype(np.float64)
    community_degree = np.bincount(
        labels, weights=graph.degrees().astype(np.float64), minlength=k
    )
    quality = intra / m - resolution * (community_degree / (2.0 * m)) ** 2
    return float(quality.sum())


def _modularity_scalar(graph: Graph, partition: Partition, resolution: float = 1.0) -> float:
    """Per-edge reference implementation of :func:`modularity` (tests only)."""
    if partition.num_nodes != graph.num_nodes:
        raise ValueError(
            f"partition covers {partition.num_nodes} nodes but graph has {graph.num_nodes}"
        )
    m = graph.num_edges
    if m == 0:
        return 0.0
    labels = partition.labels
    intra = np.zeros(partition.num_communities, dtype=np.float64)
    for u, v in graph.edges():
        if labels[u] == labels[v]:
            intra[labels[u]] += 1.0
    degrees = graph.degrees()
    community_degree = np.zeros(partition.num_communities, dtype=np.float64)
    for node in range(graph.num_nodes):
        community_degree[labels[node]] += degrees[node]
    quality = intra / m - resolution * (community_degree / (2.0 * m)) ** 2
    return float(quality.sum())


__all__ = ["Partition", "modularity"]
