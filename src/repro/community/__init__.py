"""Community-detection substrate.

PrivGraph partitions the graph with a community-detection pass, the CD query
(Q12) runs community detection on both the true and the synthetic graph, and
the CD error metrics (NMI / ARI / AMI / average-F1) compare the two
partitions.  Everything needed for that lives here, implemented from scratch:

* :mod:`repro.community.louvain` — Louvain modularity optimisation;
* :mod:`repro.community.label_propagation` — the cheaper label-propagation
  alternative (used by tests and as a fallback for very small graphs);
* :mod:`repro.community.partition` — the partition value object and modularity;
* :mod:`repro.community.metrics` — partition-similarity scores.
"""

from repro.community.label_propagation import label_propagation_communities
from repro.community.louvain import louvain_communities
from repro.community.metrics import (
    adjusted_mutual_information,
    adjusted_rand_index,
    average_f1_score,
    normalized_mutual_information,
)
from repro.community.partition import Partition, modularity

__all__ = [
    "label_propagation_communities",
    "louvain_communities",
    "adjusted_mutual_information",
    "adjusted_rand_index",
    "average_f1_score",
    "normalized_mutual_information",
    "Partition",
    "modularity",
]
