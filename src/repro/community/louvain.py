"""Louvain modularity optimisation (Blondel et al. 2008), from scratch.

PrivGraph's representation stage runs Louvain on the original graph to obtain
a coarse node partition, and the benchmark's community-detection query (Q12)
runs it on both the true and the synthetic graph.  The implementation follows
the classic two-phase scheme:

1. **Local move phase** — repeatedly move single nodes to the neighbouring
   community with the best modularity gain until no move improves modularity.
2. **Aggregation phase** — collapse communities into super-nodes (keeping a
   weighted self-loop for intra-community edges) and repeat on the smaller
   graph.

Two engines share that scheme:

* **CSR engine** (default, ``method="csr"``) — the level graph lives in flat
  ``indptr``/``indices``/``weights`` arrays.  The local-move phase runs in
  *batched sweeps*: every frontier node's per-community link weights are
  tallied with one sort + ``np.add.reduceat`` over the gathered adjacency
  slices, the best target per node is a segmented argmax, and all improving
  moves are applied at once.  Synchronous moves can conflict, so two guards
  keep the quality at classic-Louvain level: the singleton-swap rule (a
  singleton may only move into another singleton with a *smaller* label,
  which breaks the pairwise oscillation pattern) and a modularity check after
  every sweep that reverts and ends the level if the batch did not improve.
  Aggregation buckets super-edges with one sort over community-pair codes —
  the sorted unique codes *are* the next level's CSR.  No per-node dicts
  anywhere.
* **dict engine** (``method="dict"``) — the original per-node weighted-dict
  implementation with queue pruning, kept as the seed-compatible reference
  for the equivalence suite.

The engines optimise the same objective but break modularity ties
differently (the dict engine follows dict insertion order; the CSR engine
prefers the smallest community label), and they consume ``rng`` differently
(both only use it to shuffle the visiting order), so partitions can
legitimately differ — the equivalence tests assert modularity parity within
tolerance, not label-identical output.  Both engines are deterministic for a
fixed seed.
"""

from __future__ import annotations

import warnings
from collections import defaultdict, deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.community.partition import Partition
from repro.utils.arrays import first_of_run
from repro.utils.rng import RngLike, ensure_rng

_WeightedAdjacency = List[Dict[int, float]]

#: Sweep / visit budget multiplier shared by both engines (the dict engine
#: caps local moves at ``64 * n`` visits, the CSR engine at 64 sweeps of at
#: most ``n`` nodes each).
_MOVE_BUDGET = 64


class LouvainConvergenceWarning(RuntimeWarning):
    """The local-move phase hit its visit/sweep cap before converging."""


# ---------------------------------------------------------------------------
# CSR engine (default)
# ---------------------------------------------------------------------------

def _graph_to_csr(graph: Graph) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Symmetric CSR (``indptr``, ``indices``, ``weights``) of a simple graph.

    ``weights`` is ``None`` — the convention for "all ones" throughout the
    engine, letting the level-0 hot loops count entries instead of gathering
    and summing a constant array.  Aggregated levels produce real weight
    arrays in :func:`_aggregate_csr`.
    """
    n = graph.num_nodes
    edges = graph.edge_array()
    m = edges.shape[0]
    if m == 0:
        return np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64), None
    sources = np.concatenate([edges[:, 0], edges[:, 1]])
    targets = np.concatenate([edges[:, 1], edges[:, 0]])
    order = np.argsort(sources, kind="stable")
    indices = targets[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(sources, minlength=n), out=indptr[1:])
    return indptr, indices, None


def _gather_rows(indptr: np.ndarray, indices: np.ndarray,
                 weights: Optional[np.ndarray], rows: np.ndarray,
                 ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Concatenated adjacency slices of ``rows``: (row-of-entry, neighbour, weight)."""
    counts = indptr[rows + 1] - indptr[rows]
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, (None if weights is None else np.empty(0, dtype=np.float64))
    # Entry positions: for each row, the contiguous CSR slice [start, start+deg).
    segment_starts = np.cumsum(counts) - counts
    positions = np.repeat(indptr[rows] - segment_starts, counts)
    positions += np.arange(total, dtype=np.int64)
    row_of_entry = np.repeat(np.arange(rows.size, dtype=np.int64), counts)
    return row_of_entry, indices[positions], (None if weights is None
                                              else weights[positions])


#: Upper bound on the number of nodes whose moves are decided simultaneously.
#: Within a chunk the state is frozen (fully synchronous); between chunks the
#: community arrays are updated, which breaks the "pile-up" pathology where
#: hundreds of nodes simultaneously crowd into the same community they each
#: individually scored as best.  Smaller chunks → closer to the sequential
#: reference quality, more numpy-call overhead.
_CHUNK_SIZE = 1024

#: After the opening sweeps (which move the most nodes and carry the
#: conflict risk), the exact modularity guard only runs every this many
#: sweeps; a snapshot of the last guarded state is kept for the revert.
_GUARD_INTERVAL = 8

#: A sweep runs in "fresh" mode (per-chunk link tallies) while more than
#: this share of the frontier moved in the previous sweep; below it the
#: batched stale-skip path takes over (deferred nodes are re-queued, so
#: correctness is unaffected).
_CHURN_THRESHOLD = 0.2

#: Once a level's churn drops below the threshold, this many more (cheap,
#: batched) tail sweeps run before the level is aggregated away — classic
#: Louvain would grind the tail to full convergence on the big level graph;
#: aggregating early hands the remaining refinement to the next level at a
#: fraction of the cost (the same idea as python-louvain's ``threshold``).
_TAIL_SWEEPS = 3

#: A level ends once a guarded stretch of sweeps improves modularity by less
#: than this (same early-stopping role as python-louvain's ``threshold``):
#: the aggregated next level re-optimises at a fraction of the cost, so
#: grinding out marginal gains on the large level graph is wasted work.
_MIN_STRETCH_GAIN = 3e-3


#: Shared first-of-run boundary mask (see :func:`repro.utils.arrays.first_of_run`).
_first_of_segment = first_of_run


def _sort_codes(codes: np.ndarray, limit: int) -> np.ndarray:
    """Argsort of composite group codes (default introsort — deterministic).

    Stability is not needed: the codes are only used to *group* equal values,
    and the group order after sorting is the same either way.  Codes bounded
    by ``limit`` that fit in int32 sort ~30% faster (half the memory traffic).
    """
    if limit < 2**31:
        return np.argsort(codes.astype(np.int32))
    return np.argsort(codes)


def _one_level_csr(indptr: np.ndarray, indices: np.ndarray,
                   weights: Optional[np.ndarray], self_loops: np.ndarray,
                   resolution: float, rng,
                   stats: Optional[dict] = None) -> np.ndarray:
    """Batched local-move phase on a CSR level graph; returns community labels.

    Communities are tracked in three flat arrays (label, total strength and
    size per community id) — no per-node dicts.  The pruning frontier is an
    int array: after a sweep, only neighbours of moved nodes that ended up
    outside the mover's new community are revisited (Ozaki et al. 2016, the
    same rule the dict engine's queue applies one node at a time).  Each
    sweep shuffles the frontier and processes it in chunks of at most
    ``_CHUNK_SIZE`` nodes with the community state refreshed between chunks;
    high-churn sweeps re-tally link weights per chunk ("fresh" mode), while
    low-churn sweeps tally once and defer any node whose tally a move
    invalidated ("batched" mode).
    """
    n = indptr.size - 1
    community = np.arange(n, dtype=np.int64)
    degree = np.diff(indptr)
    if weights is None:
        strength = degree.astype(np.float64) + 2.0 * self_loops
    else:
        strength = np.bincount(
            np.repeat(np.arange(n, dtype=np.int64), degree), weights=weights, minlength=n
        ) + 2.0 * self_loops
    community_strength = strength.copy()
    community_size = np.ones(n, dtype=np.int64)
    two_m = float(strength.sum())
    if two_m <= 0:
        return community
    scale = resolution / two_m
    # Synchronised int32 label copy: composite sort codes built from it are
    # half the width, which speeds up the hot argsort substantially.
    community32 = community.astype(np.int32) if n < 2**31 else None

    entry_src = np.repeat(np.arange(n, dtype=np.int64), degree)
    double_self_loops = 2.0 * float(self_loops.sum())

    def level_modularity() -> float:
        # Σ_in counts directed entries (each undirected edge twice) plus the
        # doubled self-loops; Σ_tot is the maintained strength array.
        if indices.size:
            intra_mask = community[entry_src] == community[indices]
            intra = (float(np.count_nonzero(intra_mask)) if weights is None
                     else float(weights[intra_mask].sum()))
        else:
            intra = 0.0
        intra += double_self_loops
        return intra / two_m - resolution * float(np.sum((community_strength / two_m) ** 2))

    def chunk_moves(chunk: np.ndarray, row_start: np.ndarray, group_row: np.ndarray,
                    group_comm: np.ndarray, link_weight: np.ndarray,
                    stale: Optional[np.ndarray] = None,
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Best improving move per chunk node under the *current* state.

        ``group_row``/``group_comm``/``link_weight`` are this chunk's
        (node, neighbouring community) → link-weight groups with chunk-local
        row ids.  ``stale`` (per chunk row) marks nodes whose tally involves
        a neighbour that moved after the tally was computed; their moves are
        skipped and the caller re-queues them for the next sweep, where they
        are re-tallied fresh.
        """
        current_row = community[chunk]
        strength_row = strength[chunk]
        singleton_row = community_size[current_row] == 1

        node_strength = strength_row[group_row]
        current_of_group = current_row[group_row]
        is_current = group_comm == current_of_group
        # gain = link - resolution * strength(candidate \ node) * strength(node) / 2m,
        # accumulated in place over one scratch array.
        gain = community_strength[group_comm]
        np.subtract(gain, node_strength, out=gain, where=is_current)
        gain *= node_strength
        gain *= -scale
        gain += link_weight

        # Baseline = gain of staying put (link weight to the own community
        # defaults to 0 when the node has no intra-community edge).
        baseline = community_strength[current_row]
        baseline -= strength_row
        baseline *= strength_row
        baseline *= -scale
        baseline[group_row[is_current]] = gain[is_current]

        candidate_gain = np.where(is_current, -np.inf, gain)
        sizes_of_group = community_size[group_comm]
        # Two kinds of forbidden candidates share one mask write: ghost
        # communities that emptied out earlier in this sweep (their members
        # moved after the link grouping was computed — zero strength would
        # look like a free win), and the singleton-swap rule: a singleton
        # node may only enter another singleton community with a smaller
        # label, which breaks the synchronous oscillation where two
        # singletons trade places forever (the classic star/bipartite
        # pathology of batched Louvain).
        forbidden = sizes_of_group == 0
        forbidden |= (
            (sizes_of_group == 1) & singleton_row[group_row]
            & (group_comm > current_of_group)
        )
        candidate_gain[forbidden] = -np.inf

        # Segmented argmax per chunk node; groups are row-major and every
        # chunk node has at least one group (degree > 0), so the row
        # segments line up with the chunk order.
        best_gain = np.maximum.reduceat(candidate_gain, row_start)
        groups_per_row = np.diff(np.append(row_start, group_row.size))
        is_best = candidate_gain == np.repeat(best_gain, groups_per_row)
        best_positions = np.nonzero(is_best)[0]
        # First best group per row — groups are sorted by community label
        # within a row, so ties resolve to the smallest label.
        rows_of_best = group_row[best_positions]
        target = group_comm[best_positions[_first_of_segment(rows_of_best)]]

        move = (best_gain > baseline + 1e-12) & (target != current_row)
        if stale is not None:
            move &= ~stale
        return chunk[move], target[move]

    def gather_sweep(frontier: np.ndarray):
        """Per-sweep adjacency gather shared by every chunk of the sweep.

        Returns the per-row entry boundaries plus the flat neighbour /
        pre-multiplied row-offset / weight arrays.  The (sorted) link
        grouping itself happens per entry range in :func:`group_entries`,
        because community labels change between chunks.
        """
        counts = indptr[frontier + 1] - indptr[frontier]
        entry_cum = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
        positions = np.repeat(indptr[frontier] - entry_cum[:-1], counts)
        positions += np.arange(int(entry_cum[-1]), dtype=np.int64)
        neighbor_all = indices[positions]
        if community32 is not None and frontier.size * n < 2**31:
            row_offset_all = np.repeat(
                np.arange(frontier.size, dtype=np.int32) * np.int32(n), counts
            )
            labels = community32
        else:
            row_offset_all = np.repeat(
                np.arange(frontier.size, dtype=np.int64) * np.int64(n), counts
            )
            labels = community
        weight_all = None if weights is None else weights[positions]
        return entry_cum, neighbor_all, row_offset_all, labels, weight_all

    def group_entries(gathered, entry_lo: int, entry_hi: int, first_row: int):
        """Link grouping of one gathered entry range, with chunk-local rows.

        One composite ``row * n + community[neighbour]`` sort (int32 codes
        from the synchronised label copy when they fit — half the sort
        bandwidth); the labels are read at call time, so per-chunk calls see
        every earlier chunk's moves.
        """
        _, neighbor_all, row_offset_all, labels, weight_all = gathered
        code = row_offset_all[entry_lo:entry_hi] + labels[neighbor_all[entry_lo:entry_hi]]
        order = np.argsort(code)
        sorted_code = code[order]
        group_start = np.nonzero(_first_of_segment(sorted_code))[0]
        if weight_all is None:
            # All weights are 1: the per-group link weight is the group size.
            link_weight = np.diff(np.append(group_start, sorted_code.size)).astype(np.float64)
        else:
            link_weight = np.add.reduceat(weight_all[entry_lo:entry_hi][order], group_start)
        # Decode in the codes' own dtype (products stay in range by the
        # int32-eligibility check in gather_sweep).
        global_row = sorted_code[group_start] // n
        group_comm = sorted_code[group_start] - global_row * n
        group_row = global_row - first_row
        row_start = np.nonzero(_first_of_segment(group_row))[0]
        return row_start, group_row, group_comm, link_weight

    def restore(snapshot: np.ndarray) -> None:
        community[:] = snapshot
        if community32 is not None:
            community32[:] = snapshot
        community_strength[:] = np.bincount(community, weights=strength, minlength=n)
        community_size[:] = np.bincount(community, minlength=n)

    frontier = np.nonzero(degree > 0)[0]
    best_quality = level_modularity()
    guarded_community = community.copy()
    unguarded_moves = False
    sweeps = 0
    capped = False
    high_churn = True  # the opening sweeps move most of the graph
    tail_countdown: Optional[int] = None
    chunk_divisor = 4
    while frontier.size:
        if sweeps >= _MOVE_BUDGET:
            capped = True
            break
        sweeps += 1

        if rng is not None and frontier.size > 1:
            frontier = rng.permutation(frontier)
        if high_churn:
            # Small chunks: mass-move sweeps need frequent state refreshes to
            # avoid within-chunk pile-ups (≥4 chunks even on small graphs).
            # ``chunk_divisor`` starts at 4 and is raised whenever the guard
            # reverts a conflicted sweep — at the limit (chunk size 1) moves
            # are applied one node at a time, which is exact greedy Louvain.
            chunk_size = max(1, min(_CHUNK_SIZE, frontier.size // chunk_divisor))
        else:
            # Low-churn sweeps rarely conflict (and the stale-skip plus the
            # modularity guard catch those that do), so the tail runs with
            # as few chunks as possible.
            chunk_size = _CHUNK_SIZE
        num_chunks = max(1, -(-frontier.size // chunk_size))
        sweep_movers: List[np.ndarray] = []
        requeue: List[np.ndarray] = []

        def apply_moves(movers: np.ndarray, new_comm: np.ndarray) -> None:
            old_comm = community[movers]
            mover_strength = strength[movers]
            np.subtract.at(community_strength, old_comm, mover_strength)
            np.add.at(community_strength, new_comm, mover_strength)
            np.subtract.at(community_size, old_comm, 1)
            np.add.at(community_size, new_comm, 1)
            community[movers] = new_comm
            if community32 is not None:
                community32[movers] = new_comm
            sweep_movers.append(movers)

        gathered = gather_sweep(frontier)
        entry_cum = gathered[0]
        chunk_bounds = np.linspace(0, frontier.size, num_chunks + 1).astype(np.int64)
        if high_churn:
            # Fresh mode: re-group the links per chunk so every decision sees
            # the moves of earlier chunks.  Costs one sort per chunk (the
            # gather is shared); only worth it while a large share of the
            # frontier is moving.
            for index in range(num_chunks):
                lo, hi = chunk_bounds[index], chunk_bounds[index + 1]
                if lo == hi:
                    continue
                movers, new_comm = chunk_moves(
                    frontier[lo:hi],
                    *group_entries(gathered, entry_cum[lo], entry_cum[hi], lo),
                )
                if movers.size:
                    apply_moves(movers, new_comm)
        else:
            # Batched mode: one grouping for the whole sweep.  A node whose
            # tally an earlier chunk's move invalidated (it neighbours a
            # mover) is skipped and re-queued for the next sweep — the
            # low-churn tail, which is the bulk of all sweeps, runs at one
            # sort per sweep without ever acting on stale link weights.
            row_start, group_row, group_comm, link_weight = group_entries(
                gathered, 0, int(entry_cum[-1]), 0
            )
            stale_flag = np.zeros(n, dtype=bool)
            group_bounds = np.append(row_start, group_row.size)[chunk_bounds]
            for index in range(num_chunks):
                lo, hi = chunk_bounds[index], chunk_bounds[index + 1]
                glo, ghi = group_bounds[index], group_bounds[index + 1]
                if lo == hi:
                    continue
                chunk = frontier[lo:hi]
                stale = stale_flag[chunk] if sweep_movers else None
                movers, new_comm = chunk_moves(
                    chunk, row_start[lo:hi] - glo, group_row[glo:ghi] - lo,
                    group_comm[glo:ghi], link_weight[glo:ghi], stale=stale,
                )
                if stale is not None and np.any(stale):
                    requeue.append(chunk[stale])
                if movers.size:
                    apply_moves(movers, new_comm)
                    # Any tally involving these movers is now stale.
                    _, moved_neighbor, _ = _gather_rows(indptr, indices, None, movers)
                    stale_flag[moved_neighbor] = True

        if not sweep_movers:
            if requeue:
                frontier = np.concatenate(requeue)
                continue
            break
        # Fresh mode is only worth its per-chunk tallies while a large share
        # of the frontier is moving (a level's opening sweeps); the batched
        # stale-skip path would defer most of a high-churn sweep.
        was_high_churn = high_churn
        high_churn = (
            sum(block.size for block in sweep_movers) > _CHURN_THRESHOLD * frontier.size
        )
        if was_high_churn and not high_churn and tail_countdown is None:
            tail_countdown = _TAIL_SWEEPS
        elif tail_countdown is not None and tail_countdown > 0:
            tail_countdown -= 1
        unguarded_moves = True

        # Exact modularity guard: every sweep while the big conflict-prone
        # batches run, then amortised to every _GUARD_INTERVAL sweeps.  A
        # non-improving stretch is reverted to the last guarded snapshot and
        # ends the level (classic Louvain's stopping rule) — the singleton
        # rule makes genuine oscillation rare, so the guard is a backstop.
        tail_done = tail_countdown == 0
        if tail_done or sweeps <= 4 or sweeps % _GUARD_INTERVAL == 0:
            quality = level_modularity()
            if quality <= best_quality + 1e-10:
                restore(guarded_community)
                unguarded_moves = False
                if was_high_churn and chunk_size > 1 and sweeps < _MOVE_BUDGET:
                    # The synchronous moves conflicted into a net loss (e.g.
                    # the chain-shift pathology on trees): retry the sweep
                    # from the guarded state with finer chunks.  Chunk size 1
                    # is exact greedy Louvain, so the retries terminate.
                    chunk_divisor *= 4
                    high_churn = True
                    continue
                break
            stretch_gain = quality - best_quality
            best_quality = quality
            np.copyto(guarded_community, community)
            unguarded_moves = False
            if sweeps > 4 and stretch_gain < _MIN_STRETCH_GAIN:
                break
            if tail_done:
                # The mass-move phase of this level is over and the short
                # batched tail has run: aggregate now and let the (much
                # smaller) next level finish the refinement.
                break

        # Pruning: revisit only neighbours of movers that sit outside the
        # mover's (final) new community, plus any stale-deferred nodes.
        all_movers = np.concatenate(sweep_movers)
        mover_row, mover_neighbor, _ = _gather_rows(indptr, indices, None, all_movers)
        outside = community[mover_neighbor] != community[all_movers][mover_row]
        in_frontier = np.zeros(n, dtype=bool)
        in_frontier[mover_neighbor[outside]] = True
        for block in requeue:
            in_frontier[block] = True
        frontier = np.nonzero(in_frontier)[0]

    if unguarded_moves:
        # The loop ended between guard points; accept the tail only if it
        # still improved over the last guarded state.
        if level_modularity() <= best_quality + 1e-10:
            restore(guarded_community)

    if stats is not None:
        stats["sweeps"] = stats.get("sweeps", 0) + sweeps
        stats["capped"] = stats.get("capped", False) or capped
    if capped:
        warnings.warn(
            f"Louvain CSR local-move phase hit the {_MOVE_BUDGET}-sweep cap with "
            f"{frontier.size} nodes still queued; the move phase was truncated",
            LouvainConvergenceWarning,
            stacklevel=2,
        )
    return community


def _aggregate_csr(indptr: np.ndarray, indices: np.ndarray,
                   weights: Optional[np.ndarray], self_loops: np.ndarray,
                   community: np.ndarray,
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Collapse communities into super-nodes with sort + bincount bucketing.

    Returns the aggregated ``(indptr, indices, weights, self_loops)`` plus the
    node → super-node relabelling.  Community labels are compacted in sorted
    order (same convention as the dict engine's ``sorted(set(community))``);
    the sorted unique community-pair codes *are* the next level's CSR layout.
    """
    n = indptr.size - 1
    labels, mapping = np.unique(community, return_inverse=True)
    k = labels.size
    mapping = mapping.astype(np.int64)

    degree = np.diff(indptr)
    src_comm = mapping[np.repeat(np.arange(n, dtype=np.int64), degree)]
    dst_comm = mapping[indices] if indices.size else np.empty(0, dtype=np.int64)

    new_self_loops = np.bincount(mapping, weights=self_loops, minlength=k)
    if indices.size:
        intra = src_comm == dst_comm
        # Directed entries count every intra edge twice → halve the bucket sum.
        if weights is None:
            new_self_loops += 0.5 * np.bincount(src_comm[intra], minlength=k)
        else:
            new_self_loops += 0.5 * np.bincount(
                src_comm[intra], weights=weights[intra], minlength=k
            )
        inter_code = src_comm[~intra] * np.int64(k) + dst_comm[~intra]
        inter_weight = None if weights is None else weights[~intra]
    else:
        inter_code = np.empty(0, dtype=np.int64)
        inter_weight = np.empty(0, dtype=np.float64)

    if inter_code.size:
        order = _sort_codes(inter_code, k * k)
        sorted_code = inter_code[order]
        group_start = np.nonzero(_first_of_segment(sorted_code))[0]
        unique_code = sorted_code[group_start]
        if inter_weight is None:
            new_weights = np.diff(np.append(group_start, sorted_code.size)).astype(np.float64)
        else:
            new_weights = np.add.reduceat(inter_weight[order], group_start)
        new_src = unique_code // k
        new_indices = unique_code - new_src * np.int64(k)
    else:
        new_src = np.empty(0, dtype=np.int64)
        new_indices = np.empty(0, dtype=np.int64)
        new_weights = np.empty(0, dtype=np.float64)

    new_indptr = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(np.bincount(new_src, minlength=k), out=new_indptr[1:])
    return new_indptr, new_indices, new_weights, new_self_loops, mapping


def _louvain_csr(graph: Graph, resolution: float, rng, max_levels: int,
                 diagnostics: Optional[dict] = None) -> Partition:
    """The CSR engine's level loop (rng only shuffles the sweep order)."""
    n = graph.num_nodes
    indptr, indices, weights = _graph_to_csr(graph)
    self_loops = np.zeros(n, dtype=np.float64)
    node_to_community = np.arange(n, dtype=np.int64)

    stats: dict = {"sweeps": 0, "capped": False}
    levels = 0
    for _ in range(max_levels):
        community = _one_level_csr(indptr, indices, weights, self_loops,
                                   resolution, rng, stats=stats)
        levels += 1
        indptr, indices, weights, self_loops, mapping = _aggregate_csr(
            indptr, indices, weights, self_loops, community
        )
        if indptr.size - 1 == community.size:
            break  # no merge happened at this level; we have converged
        node_to_community = mapping[node_to_community]
    if diagnostics is not None:
        diagnostics.update(
            method="csr", levels=levels,
            sweeps=stats["sweeps"], move_phase_capped=stats["capped"],
            num_communities=int(indptr.size - 1),
        )
    return Partition(node_to_community)


# ---------------------------------------------------------------------------
# dict engine (seed-compatible reference)
# ---------------------------------------------------------------------------

def _graph_to_weighted(graph: Graph) -> _WeightedAdjacency:
    """Weighted adjacency dicts built from the canonical edge array.

    The symmetric neighbour lists are assembled with one stable sort +
    cumulative-count bucketing over the edge array instead of a per-edge
    Python loop; the graph is simple, so every weight is 1.0.  The scalar
    reference (:func:`_graph_to_weighted_scalar`) is kept for the
    equivalence tests.
    """
    n = graph.num_nodes
    edges = graph.edge_array()
    m = edges.shape[0]
    if m == 0:
        return [dict() for _ in range(n)]
    # Interleave (u0,v0,u1,v1,…) so that, per node, the stable sort reproduces
    # the scalar per-edge insertion order — Louvain's tie-breaking follows
    # dict order, so this keeps the partitions bit-identical to the old loop.
    sources = np.empty(2 * m, dtype=np.int64)
    targets = np.empty(2 * m, dtype=np.int64)
    sources[0::2] = edges[:, 0]
    sources[1::2] = edges[:, 1]
    targets[0::2] = edges[:, 1]
    targets[1::2] = edges[:, 0]
    order = np.argsort(sources, kind="stable")
    targets = targets[order]
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(sources, minlength=n), out=offsets[1:])
    neighbor_ids = targets.tolist()
    return [
        dict.fromkeys(neighbor_ids[offsets[node]:offsets[node + 1]], 1.0)
        for node in range(n)
    ]


def _graph_to_weighted_scalar(graph: Graph) -> _WeightedAdjacency:
    """Per-edge reference implementation of :func:`_graph_to_weighted` (tests only)."""
    adjacency: _WeightedAdjacency = [dict() for _ in range(graph.num_nodes)]
    for u, v in graph.edges():
        adjacency[u][v] = adjacency[u].get(v, 0.0) + 1.0
        adjacency[v][u] = adjacency[v].get(u, 0.0) + 1.0
    return adjacency


def _one_level(adjacency: _WeightedAdjacency, self_loops: List[float], resolution: float,
               rng, stats: Optional[dict] = None) -> List[int]:
    """Run the local-move phase; returns the community label of each node.

    Uses queue-based pruning (Ozaki et al. 2016): instead of re-scanning all
    nodes every pass, only nodes whose neighbourhood changed since their last
    visit are revisited.  The per-node modularity-gain rule is unchanged, so
    the quality is that of classic Louvain at a fraction of the move-phase
    cost on large graphs.
    """
    n = len(adjacency)
    community = list(range(n))
    # Node strength = weighted degree + 2 * self loop; total weight 2m.
    strength = [sum(neighbors.values()) + 2.0 * self_loops[node]
                for node, neighbors in enumerate(adjacency)]
    community_strength = strength.copy()
    two_m = sum(strength)
    if two_m <= 0:
        return community

    order = list(range(n))
    rng.shuffle(order)
    queue = deque(order)
    queued = [True] * n
    visits = 0
    max_visits = _MOVE_BUDGET * n  # mirrors the old 32-full-passes cap with headroom
    while queue and visits < max_visits:
        node = queue.popleft()
        queued[node] = False
        visits += 1
        current = community[node]
        node_strength = strength[node]
        # Weight of links from `node` to each neighbouring community.
        links_to: Dict[int, float] = defaultdict(float)
        for neighbor, weight in adjacency[node].items():
            links_to[community[neighbor]] += weight
        # Remove the node from its community.
        community_strength[current] -= node_strength
        best_community = current
        best_gain = links_to.get(current, 0.0) - resolution * community_strength[current] * node_strength / two_m
        for candidate, link_weight in links_to.items():
            if candidate == current:
                continue
            gain = link_weight - resolution * community_strength[candidate] * node_strength / two_m
            if gain > best_gain + 1e-12:
                best_gain = gain
                best_community = candidate
        community_strength[best_community] += node_strength
        if best_community != current:
            community[node] = best_community
            for neighbor in adjacency[node]:
                if community[neighbor] != best_community and not queued[neighbor]:
                    queue.append(neighbor)
                    queued[neighbor] = True
    capped = bool(queue)
    if stats is not None:
        stats["visits"] = stats.get("visits", 0) + visits
        stats["capped"] = stats.get("capped", False) or capped
    if capped:
        warnings.warn(
            f"Louvain dict local-move phase hit the {max_visits}-visit cap with "
            f"{len(queue)} nodes still queued; the move phase was truncated",
            LouvainConvergenceWarning,
            stacklevel=2,
        )
    return community


def _aggregate(adjacency: _WeightedAdjacency, self_loops: List[float],
               community: List[int]) -> tuple[_WeightedAdjacency, List[float], List[int]]:
    """Collapse communities into super-nodes; returns the new graph and the relabelling."""
    labels = sorted(set(community))
    relabel = {label: index for index, label in enumerate(labels)}
    size = len(labels)
    new_adjacency: _WeightedAdjacency = [dict() for _ in range(size)]
    new_self_loops = [0.0] * size
    for node, neighbors in enumerate(adjacency):
        cu = relabel[community[node]]
        new_self_loops[cu] += self_loops[node]
        for neighbor, weight in neighbors.items():
            cv = relabel[community[neighbor]]
            if cu == cv:
                if node < neighbor:
                    new_self_loops[cu] += weight
            else:
                new_adjacency[cu][cv] = new_adjacency[cu].get(cv, 0.0) + weight
    mapping = [relabel[community[node]] for node in range(len(community))]
    return new_adjacency, new_self_loops, mapping


def _louvain_dict(graph: Graph, resolution: float, rng, max_levels: int,
                  diagnostics: Optional[dict] = None) -> Partition:
    """The dict engine's level loop (the retained reference path)."""
    n = graph.num_nodes
    adjacency = _graph_to_weighted(graph)
    self_loops = [0.0] * n
    node_to_community = list(range(n))

    stats: dict = {"visits": 0, "capped": False}
    levels = 0
    for _ in range(max_levels):
        community = _one_level(adjacency, self_loops, resolution, rng, stats=stats)
        levels += 1
        if len(set(community)) == len(adjacency):
            break  # no merge happened at this level; we have converged
        adjacency, self_loops, mapping = _aggregate(adjacency, self_loops, community)
        # Compose the original-node -> super-node chain with this level's merge.
        node_to_community = [mapping[node_to_community[node]] for node in range(n)]
    if diagnostics is not None:
        diagnostics.update(
            method="dict", levels=levels,
            visits=stats["visits"], move_phase_capped=stats["capped"],
            num_communities=len(set(node_to_community)),
        )
    return Partition(node_to_community)


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------

def louvain_communities(graph: Graph, resolution: float = 1.0, rng: RngLike = None,
                        max_levels: int = 16, method: str = "csr",
                        diagnostics: Optional[dict] = None) -> Partition:
    """Detect communities with the Louvain method; returns a :class:`Partition`.

    Parameters
    ----------
    method:
        ``"csr"`` (default) runs the flat-array batched engine; ``"dict"``
        runs the retained per-node reference implementation.  Both optimise
        the same modularity objective; tie-breaking differs (see the module
        docstring), so partitions may differ where ties occur.
    diagnostics:
        Optional dict filled with convergence information: ``levels``,
        ``sweeps``/``visits``, ``move_phase_capped`` (True when the move
        budget truncated a level — also surfaced as a
        :class:`LouvainConvergenceWarning`) and ``num_communities``.
    """
    if method not in ("csr", "dict"):
        raise ValueError(f"unknown Louvain method {method!r}; expected 'csr' or 'dict'")
    n = graph.num_nodes
    if n == 0:
        if diagnostics is not None:
            diagnostics.update(method=method, levels=0, move_phase_capped=False,
                               num_communities=0)
        return Partition([])
    if graph.num_edges == 0:
        if diagnostics is not None:
            diagnostics.update(method=method, levels=0, move_phase_capped=False,
                               num_communities=n)
        return Partition(list(range(n)))
    generator = ensure_rng(rng)
    if method == "csr":
        return _louvain_csr(graph, resolution, generator, max_levels,
                            diagnostics=diagnostics)
    return _louvain_dict(graph, resolution, generator, max_levels,
                         diagnostics=diagnostics)


__all__ = ["louvain_communities", "LouvainConvergenceWarning"]
