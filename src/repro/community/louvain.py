"""Louvain modularity optimisation (Blondel et al. 2008), from scratch.

PrivGraph's representation stage runs Louvain on the original graph to obtain
a coarse node partition, and the benchmark's community-detection query (Q12)
runs it on both the true and the synthetic graph.  The implementation follows
the classic two-phase scheme:

1. **Local move phase** — repeatedly move single nodes to the neighbouring
   community with the best modularity gain until no move improves modularity.
2. **Aggregation phase** — collapse communities into super-nodes (keeping a
   weighted self-loop for intra-community edges) and repeat on the smaller
   graph.

The graph is converted once into weighted adjacency dictionaries so the
aggregated levels can reuse the same move routine.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, List

import numpy as np

from repro.graphs.graph import Graph
from repro.community.partition import Partition
from repro.utils.rng import RngLike, ensure_rng

_WeightedAdjacency = List[Dict[int, float]]


def _graph_to_weighted(graph: Graph) -> _WeightedAdjacency:
    """Weighted adjacency dicts built from the canonical edge array.

    The symmetric neighbour lists are assembled with one stable sort +
    cumulative-count bucketing over the edge array instead of a per-edge
    Python loop; the graph is simple, so every weight is 1.0.  The scalar
    reference (:func:`_graph_to_weighted_scalar`) is kept for the
    equivalence tests.
    """
    n = graph.num_nodes
    edges = graph.edge_array()
    m = edges.shape[0]
    if m == 0:
        return [dict() for _ in range(n)]
    # Interleave (u0,v0,u1,v1,…) so that, per node, the stable sort reproduces
    # the scalar per-edge insertion order — Louvain's tie-breaking follows
    # dict order, so this keeps the partitions bit-identical to the old loop.
    sources = np.empty(2 * m, dtype=np.int64)
    targets = np.empty(2 * m, dtype=np.int64)
    sources[0::2] = edges[:, 0]
    sources[1::2] = edges[:, 1]
    targets[0::2] = edges[:, 1]
    targets[1::2] = edges[:, 0]
    order = np.argsort(sources, kind="stable")
    targets = targets[order]
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(sources, minlength=n), out=offsets[1:])
    neighbor_ids = targets.tolist()
    return [
        dict.fromkeys(neighbor_ids[offsets[node]:offsets[node + 1]], 1.0)
        for node in range(n)
    ]


def _graph_to_weighted_scalar(graph: Graph) -> _WeightedAdjacency:
    """Per-edge reference implementation of :func:`_graph_to_weighted` (tests only)."""
    adjacency: _WeightedAdjacency = [dict() for _ in range(graph.num_nodes)]
    for u, v in graph.edges():
        adjacency[u][v] = adjacency[u].get(v, 0.0) + 1.0
        adjacency[v][u] = adjacency[v].get(u, 0.0) + 1.0
    return adjacency


def _one_level(adjacency: _WeightedAdjacency, self_loops: List[float], resolution: float,
               rng) -> List[int]:
    """Run the local-move phase; returns the community label of each node.

    Uses queue-based pruning (Ozaki et al. 2016): instead of re-scanning all
    nodes every pass, only nodes whose neighbourhood changed since their last
    visit are revisited.  The per-node modularity-gain rule is unchanged, so
    the quality is that of classic Louvain at a fraction of the move-phase
    cost on large graphs.
    """
    n = len(adjacency)
    community = list(range(n))
    # Node strength = weighted degree + 2 * self loop; total weight 2m.
    strength = [sum(neighbors.values()) + 2.0 * self_loops[node]
                for node, neighbors in enumerate(adjacency)]
    community_strength = strength.copy()
    two_m = sum(strength)
    if two_m <= 0:
        return community

    order = list(range(n))
    rng.shuffle(order)
    queue = deque(order)
    queued = [True] * n
    visits = 0
    max_visits = 64 * n  # mirrors the old 32-full-passes cap with headroom
    while queue and visits < max_visits:
        node = queue.popleft()
        queued[node] = False
        visits += 1
        current = community[node]
        node_strength = strength[node]
        # Weight of links from `node` to each neighbouring community.
        links_to: Dict[int, float] = defaultdict(float)
        for neighbor, weight in adjacency[node].items():
            links_to[community[neighbor]] += weight
        # Remove the node from its community.
        community_strength[current] -= node_strength
        best_community = current
        best_gain = links_to.get(current, 0.0) - resolution * community_strength[current] * node_strength / two_m
        for candidate, link_weight in links_to.items():
            if candidate == current:
                continue
            gain = link_weight - resolution * community_strength[candidate] * node_strength / two_m
            if gain > best_gain + 1e-12:
                best_gain = gain
                best_community = candidate
        community_strength[best_community] += node_strength
        if best_community != current:
            community[node] = best_community
            for neighbor in adjacency[node]:
                if community[neighbor] != best_community and not queued[neighbor]:
                    queue.append(neighbor)
                    queued[neighbor] = True
    return community


def _aggregate(adjacency: _WeightedAdjacency, self_loops: List[float],
               community: List[int]) -> tuple[_WeightedAdjacency, List[float], List[int]]:
    """Collapse communities into super-nodes; returns the new graph and the relabelling."""
    labels = sorted(set(community))
    relabel = {label: index for index, label in enumerate(labels)}
    size = len(labels)
    new_adjacency: _WeightedAdjacency = [dict() for _ in range(size)]
    new_self_loops = [0.0] * size
    for node, neighbors in enumerate(adjacency):
        cu = relabel[community[node]]
        new_self_loops[cu] += self_loops[node]
        for neighbor, weight in neighbors.items():
            cv = relabel[community[neighbor]]
            if cu == cv:
                if node < neighbor:
                    new_self_loops[cu] += weight
            else:
                new_adjacency[cu][cv] = new_adjacency[cu].get(cv, 0.0) + weight
    mapping = [relabel[community[node]] for node in range(len(community))]
    return new_adjacency, new_self_loops, mapping


def louvain_communities(graph: Graph, resolution: float = 1.0, rng: RngLike = None,
                        max_levels: int = 16) -> Partition:
    """Detect communities with the Louvain method; returns a :class:`Partition`."""
    generator = ensure_rng(rng)
    n = graph.num_nodes
    if n == 0:
        return Partition([])
    if graph.num_edges == 0:
        return Partition(list(range(n)))

    adjacency = _graph_to_weighted(graph)
    self_loops = [0.0] * n
    node_to_community = list(range(n))

    for _ in range(max_levels):
        community = _one_level(adjacency, self_loops, resolution, generator)
        if len(set(community)) == len(adjacency):
            break  # no merge happened at this level; we have converged
        adjacency, self_loops, mapping = _aggregate(adjacency, self_loops, community)
        # Compose the original-node -> super-node chain with this level's merge.
        node_to_community = [mapping[node_to_community[node]] for node in range(n)]
    return Partition(node_to_community)


__all__ = ["louvain_communities"]
