"""Command-line interface for the PGB benchmark.

Mirrors the public benchmark platform's workflows from the terminal::

    python -m repro list                      # algorithms, datasets, queries
    python -m repro run --datasets ba --algorithms tmf dgg --epsilons 0.5 2 \
                        --queries num_edges modularity --scale 0.03
    python -m repro run --checkpoint run.jsonl --resume   # continue a killed run
    python -m repro run --shard 0/2 --output-json shard0.json   # half the grid
    python -m repro run --store sqlite:registry.db        # straight into a registry
    python -m repro merge 'shard*.json' --output-json full.json
    python -m repro export full.json --output-csv full.csv
    python -m repro submit shard0.json shard1.json --registry registry.db
    python -m repro submit shard0.json --url http://bench.example:8080 \
                        --token-file my.token       # retrying remote submit
    python -m repro leaderboard --registry registry.db
    python -m repro serve --registry registry.db --port 8080
    python -m repro serve --registry registry.db --tokens-file tokens.txt
    python -m repro journal repair run.jsonl      # truncate a damaged journal
    python -m repro profile --datasets ba facebook --scale 0.03
    python -m repro recommend --nodes 5000 --acc 0.4 --epsilon 1.0
    python -m repro generate --dataset facebook --algorithm privgraph --epsilon 1 \
                        --output synthetic.txt

Every subcommand prints the same plain-text tables the benchmark harness uses,
so CLI output, leaderboard output and bench output stay consistent.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.algorithms.registry import PGB_ALGORITHM_NAMES, get_algorithm, list_algorithms
from repro.analysis.cli import add_lint_arguments, run_lint
from repro.core.profiling import profile_algorithms, profiles_as_tables
from repro.core.guidelines import recommend_algorithm
from repro.core.report import (
    render_benchmark_tables,
    render_leaderboard,
    render_resource_table,
)
from repro.core.runner import run_benchmark
from repro.core.spec import PGB_EPSILONS, BenchmarkSpec
from repro.graphs.datasets import PGB_DATASET_NAMES, get_dataset, list_datasets, load_dataset
from repro.graphs.io import write_edge_list
from repro.queries.registry import PGB_QUERY_NAMES, list_queries


def _parse_shard(value: str) -> Tuple[int, int]:
    """Parse ``--shard i/k`` into ``(index, count)`` with validation."""
    try:
        index_text, count_text = value.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard must look like I/K (e.g. 0/2), got {value!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise argparse.ArgumentTypeError(
            f"shard index must satisfy 0 <= I < K, got {value!r}"
        )
    return index, count


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PGB: benchmark differentially private synthetic graph generation algorithms.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered algorithms, datasets and queries")

    run_parser = subparsers.add_parser("run", help="run a benchmark grid and print the tables")
    run_parser.add_argument("--algorithms", nargs="+", default=list(PGB_ALGORITHM_NAMES))
    run_parser.add_argument("--datasets", nargs="+", default=list(PGB_DATASET_NAMES))
    run_parser.add_argument("--epsilons", nargs="+", type=float, default=list(PGB_EPSILONS))
    run_parser.add_argument("--queries", nargs="+", default=list(PGB_QUERY_NAMES))
    run_parser.add_argument("--repetitions", type=int, default=1)
    run_parser.add_argument("--workers", type=int, default=1,
                            help="worker processes for grid cells; results are "
                                 "identical for any worker count")
    run_parser.add_argument("--max-retries", type=int, default=2, metavar="N",
                            help="extra attempts granted to each (cell, repetition) "
                                 "unit lost to a worker crash, reaped by the "
                                 "timeout watchdog, or failing with an exception; "
                                 "retries are bit-identical thanks to keyed "
                                 "seeding (default: 2)")
    run_parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                            help="wall-clock deadline per (cell, repetition) unit; "
                                 "with --workers > 1 a watchdog terminates stuck "
                                 "workers past it (default: no deadline)")
    run_parser.add_argument("--inject-fault", nargs="+", default=None,
                            metavar="KIND@UNIT[:always]",
                            help="deterministic chaos directives (crash@N, raise@N, "
                                 "hang@N) for testing the fault-tolerant execution "
                                 "layer; see docs/fault_tolerance.md")
    run_parser.add_argument("--no-shm", action="store_true",
                            help="ship datasets to workers as pickled payloads "
                                 "instead of shared-memory segment handles; the "
                                 "reference transport — results are bit-identical "
                                 "either way (see docs/performance.md)")
    run_parser.add_argument("--scale", type=float, default=0.02)
    run_parser.add_argument("--seed", type=int, default=2024)
    run_parser.add_argument("--no-strict", action="store_true",
                            help="allow mixing privacy models / unusual epsilons")
    run_parser.add_argument("--output-json", default=None,
                            help="save the full results (spec + cells) as JSON")
    run_parser.add_argument("--output-csv", default=None,
                            help="export one CSV row per benchmark cell")
    run_parser.add_argument("--checkpoint", default=None, metavar="PATH",
                            help="append each completed grid cell to this JSONL "
                                 "journal so a killed run can be resumed")
    run_parser.add_argument("--resume", action="store_true",
                            help="skip cells already recorded in the --checkpoint "
                                 "journal (refused when the spec changed)")
    run_parser.add_argument("--shard", type=_parse_shard, default=None, metavar="I/K",
                            help="run only the grid cells with index ≡ I (mod K); "
                                 "combine shard outputs with `repro merge`")
    run_parser.add_argument("--store", default=None, metavar="URL",
                            help="persist the results to a storage backend: "
                                 "sqlite:PATH submits into a registry database, "
                                 "json:PATH (or a bare .json/.json.gz path) "
                                 "writes the classic results file")
    run_parser.add_argument("--submitter", default="local-run",
                            help="submitter recorded when --store targets a "
                                 "registry database")

    merge_parser = subparsers.add_parser(
        "merge", help="merge shard / partial result JSONs into one results file")
    merge_parser.add_argument("inputs", nargs="+",
                              help="result JSON files written by `repro run "
                                   "--output-json` (gzip .json.gz allowed; glob "
                                   "patterns like 'shard*.json' are expanded)")
    merge_parser.add_argument("--output-json", required=True,
                              help="write the merged results (spec + cells) here")
    merge_parser.add_argument("--output-csv", default=None,
                              help="also export the merged cells as CSV")

    export_parser = subparsers.add_parser(
        "export", help="export a saved results file (or store) as CSV")
    export_parser.add_argument("input",
                               help="results to export: a JSON/.json.gz file or a "
                                    "store URL (sqlite:PATH, json:PATH)")
    export_parser.add_argument("--output-csv", required=True,
                               help="write one CSV row per benchmark cell here")

    submit_parser = subparsers.add_parser(
        "submit", help="submit result files into a results registry database "
                       "or to a remote registry server")
    submit_parser.add_argument("inputs", nargs="+",
                               help="result JSON/.json.gz files (globs expanded); a "
                                    "PATH.manifest.json sidecar is validated when present")
    submit_target = submit_parser.add_mutually_exclusive_group(required=True)
    submit_target.add_argument("--registry", metavar="PATH",
                               help="registry SQLite database (created if missing)")
    submit_target.add_argument("--url", metavar="URL",
                               help="base URL of a registry server (repro serve "
                                    "--tokens-file …); submissions are retried with "
                                    "backoff and are idempotent across retries")
    submit_parser.add_argument("--submitter", default="anonymous",
                               help="who is submitting (recorded as provenance; "
                                    "with --url the server derives it from the token)")
    submit_parser.add_argument("--token", default=None,
                               help="bearer token for --url submissions")
    submit_parser.add_argument("--token-file", default=None, metavar="PATH",
                               help="file whose first non-comment line starts with "
                                    "the bearer token for --url submissions")
    submit_parser.add_argument("--max-attempts", type=int, default=None,
                               metavar="N",
                               help="retry budget for --url submissions "
                                    "(default 6 total attempts)")

    leaderboard_parser = subparsers.add_parser(
        "leaderboard", help="render the merged leaderboard of a results registry")
    leaderboard_parser.add_argument("--registry", required=True, metavar="PATH",
                                    help="registry SQLite database")
    leaderboard_parser.add_argument("--no-submissions", action="store_true",
                                    help="omit the submissions provenance table")

    serve_parser = subparsers.add_parser(
        "serve", help="serve a registry's leaderboard over a JSON API "
                      "(writable with --tokens-file)")
    serve_parser.add_argument("--registry", required=True, metavar="PATH",
                              help="registry SQLite database (created if missing "
                                   "when --tokens-file enables the write path)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8000)
    serve_parser.add_argument("--tokens-file", default=None, metavar="PATH",
                              help="bearer-tokens file ('TOKEN [NAME]' per line, "
                                   "# comments); enables POST /api/submissions")

    journal_parser = subparsers.add_parser(
        "journal", help="inspect and repair checkpoint journals")
    journal_subparsers = journal_parser.add_subparsers(
        dest="journal_command", required=True)
    journal_repair_parser = journal_subparsers.add_parser(
        "repair", help="truncate a damaged journal to its intact prefix "
                       "(the original is kept as PATH.bak)")
    journal_repair_parser.add_argument("path",
                                       help="checkpoint journal (JSONL) to repair")
    journal_repair_parser.add_argument("--no-backup", action="store_true",
                                       help="repair in place without writing PATH.bak")

    profile_parser = subparsers.add_parser("profile", help="measure time and memory per algorithm")
    profile_parser.add_argument("--algorithms", nargs="+", default=list(PGB_ALGORITHM_NAMES))
    profile_parser.add_argument("--datasets", nargs="+", default=["ba"])
    profile_parser.add_argument("--epsilon", type=float, default=1.0)
    profile_parser.add_argument("--scale", type=float, default=0.02)
    profile_parser.add_argument("--seed", type=int, default=0)

    recommend_parser = subparsers.add_parser("recommend", help="suggest an algorithm for a scenario")
    recommend_parser.add_argument("--nodes", type=int, required=True)
    recommend_parser.add_argument("--acc", type=float, required=True,
                                  help="average clustering coefficient of the graph")
    recommend_parser.add_argument("--epsilon", type=float, required=True)
    recommend_parser.add_argument("--query", default=None,
                                  help="optional priority query (e.g. degree_distribution)")

    lint_parser = subparsers.add_parser(
        "lint",
        help="statically check the determinism / privacy-budget / fingerprint "
             "invariants (see docs/static_analysis.md)",
    )
    add_lint_arguments(lint_parser)

    generate_parser = subparsers.add_parser("generate", help="generate one synthetic graph")
    generate_parser.add_argument("--dataset", required=True)
    generate_parser.add_argument("--algorithm", required=True)
    generate_parser.add_argument("--epsilon", type=float, required=True)
    generate_parser.add_argument("--scale", type=float, default=0.05)
    generate_parser.add_argument("--seed", type=int, default=0)
    generate_parser.add_argument("--output", default=None,
                                 help="write the synthetic graph as an edge list to this path")
    return parser


def _command_list() -> int:
    print("algorithms:")
    for name in list_algorithms():
        algorithm = get_algorithm(name)
        marker = " (PGB default)" if name in PGB_ALGORITHM_NAMES else ""
        print(f"  {name:<12} {algorithm.privacy_model.value:<10}{marker}")
    print("\ndatasets:")
    for name in list_datasets(include_verification=True):
        info = get_dataset(name)
        print(f"  {name:<12} |V|={info.paper_num_nodes:<7} |E|={info.paper_num_edges:<8} "
              f"ACC={info.paper_acc:<7} {info.domain}")
    print("\nqueries:")
    for name in list_queries():
        print(f"  {name}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    from repro.core.spec import SpecValidationError

    try:
        spec = BenchmarkSpec(
            algorithms=tuple(args.algorithms),
            datasets=tuple(args.datasets),
            epsilons=tuple(args.epsilons),
            queries=tuple(args.queries),
            repetitions=args.repetitions,
            scale=args.scale,
            seed=args.seed,
            strict=not args.no_strict,
            workers=args.workers,
            max_retries=args.max_retries,
            unit_timeout=args.timeout,
            faults=tuple(args.inject_fault or ()),
            shm=not args.no_shm,
        )
    except SpecValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.store:
        # Refuse a bad store target *before* hours of grid execution, the way
        # checkpoint conflicts are refused up front: parse the URL and, for a
        # database target, open it once so unwritable/corrupt paths surface now.
        from repro.core.store import SqliteResultsStore, StoreError, open_store

        try:
            store = open_store(args.store)
            if isinstance(store, SqliteResultsStore):
                from repro.core.store import connect

                connect(store.path).close()
        except StoreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    journal = None
    if args.checkpoint:
        from repro.core.persistence import (
            CheckpointJournal,
            JournalCorruptionError,
            JournalMismatchError,
        )

        checkpoint_path = Path(args.checkpoint)
        if checkpoint_path.exists() and not args.resume:
            print(
                f"error: checkpoint {checkpoint_path} already exists; pass "
                "--resume to continue it or delete it to start over",
                file=sys.stderr,
            )
            return 2
        try:
            journal = CheckpointJournal.open(checkpoint_path, spec, resume=args.resume)
        except (JournalMismatchError, JournalCorruptionError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if journal.completed:
            print(f"resuming from {checkpoint_path}: "
                  f"{len(journal.completed)} grid cells already journaled")

    total_tasks = len(spec.grid_tasks())
    if args.shard is not None:
        index, count = args.shard
        shard_tasks = sum(1 for position in range(total_tasks) if position % count == index)
        print(f"shard {index}/{count}: running {shard_tasks} of {total_tasks} grid cells")
    print(f"running {spec.num_experiments} single experiments...")
    results = run_benchmark(spec, journal=journal, shard=args.shard)
    print()
    print(render_benchmark_tables(results))
    if args.output_json:
        from repro.core.persistence import (
            manifest_path_for,
            save_manifest_json,
            save_results_json,
        )

        save_results_json(results, args.output_json)
        manifest_path = manifest_path_for(args.output_json)
        save_manifest_json(results, manifest_path)
        print(f"\nsaved JSON results to {args.output_json} "
              f"(manifest: {manifest_path})")
    if args.output_csv:
        from repro.core.persistence import export_results_csv

        export_results_csv(results, args.output_csv)
        print(f"saved CSV results to {args.output_csv}")
    if args.store:
        code = _persist_to_store(results, args.store, submitter=args.submitter,
                                 source="repro run")
        if code != 0:
            return code
    return 0


def _persist_to_store(results, url: str, submitter: str, source: str) -> int:
    """Write results into a --store target; sqlite stores go through the registry."""
    from repro.core.store import SqliteResultsStore, StoreError, open_store
    from repro.registry import RegistryError, ResultsRegistry

    try:
        store = open_store(url)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if isinstance(store, SqliteResultsStore):
        registry = ResultsRegistry(store.path)
        try:
            record = registry.submit(results, submitter=submitter, source=source)
        except (RegistryError, StoreError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        have, total = registry.coverage()
        print(f"stored results in registry {store.path} as submission "
              f"#{record.submission_id} ({record.num_cells} cells; registry now "
              f"covers {have} of {total} grid cells)")
    else:
        store.save(results, submitter=submitter, source=source)
        print(f"stored results in {store.url}")
    return 0


def _command_merge(args: argparse.Namespace) -> int:
    import warnings as _warnings

    from repro.core.persistence import (
        DuplicateCellWarning,
        expand_result_paths,
        export_results_csv,
        load_results_json,
        manifest_path_for,
        merge_results_with_stats,
        save_manifest_json,
        save_results_json,
    )

    try:
        paths = expand_result_paths(args.inputs)
        loaded = [load_results_json(path) for path in paths]
        with _warnings.catch_warnings(record=True) as caught:
            _warnings.simplefilter("always", DuplicateCellWarning)
            merged, stats = merge_results_with_stats(
                loaded, labels=[str(path) for path in paths]
            )
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    save_results_json(merged, args.output_json)
    manifest_path = manifest_path_for(args.output_json)
    save_manifest_json(merged, manifest_path)
    total = len(merged.spec.grid_tasks()) * len(merged.spec.queries)
    print(f"merged {len(paths)} result files: {len(merged.cells)} of "
          f"{total} grid cells; saved JSON results to {args.output_json} "
          f"(manifest: {manifest_path})")
    for input_stats in stats.inputs:
        parts = [f"{input_stats.cells} cells", f"{input_stats.new} new"]
        if input_stats.duplicates_agreeing:
            parts.append(f"{input_stats.duplicates_agreeing} overlapping (agreeing)")
        if input_stats.duplicates_identical:
            parts.append(f"{input_stats.duplicates_identical} byte-identical duplicates")
        print(f"  {input_stats.label}: {', '.join(parts)}")
    for warning in caught:
        if issubclass(warning.category, DuplicateCellWarning):
            print(f"warning: {warning.message}", file=sys.stderr)
    if args.output_csv:
        export_results_csv(merged, args.output_csv)
        print(f"saved CSV results to {args.output_csv}")
    print()
    print(render_benchmark_tables(merged))
    return 0


def _load_results_argument(text: str):
    """Load results named either by a store URL or a plain JSON path.

    SQLite targets are read through the registry's *merged* view (all
    submissions combined), not the latest submission alone — exporting a
    registry should export everything it covers.
    """
    from repro.core.store import (
        JsonResultsStore,
        SqliteResultsStore,
        StoreError,
        open_store,
    )
    from repro.registry import ResultsRegistry

    try:
        store = open_store(text)
    except StoreError:
        # Unrecognised suffix: treat it as a plain JSON results file, the
        # historical behaviour of every results-consuming command.
        store = JsonResultsStore(text)
    if isinstance(store, SqliteResultsStore):
        return ResultsRegistry(store.path).merged()
    if not store.exists():
        raise StoreError(f"results file {text!r} does not exist")
    return store.load()


def _command_export(args: argparse.Namespace) -> int:
    from repro.core.persistence import export_results_csv
    from repro.core.store import StoreError

    try:
        results = _load_results_argument(args.input)
    except (StoreError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    export_results_csv(results, args.output_csv)
    print(f"exported {len(results.cells)} cells from {args.input} "
          f"to {args.output_csv}")
    return 0


def _read_token(args: argparse.Namespace) -> Optional[str]:
    """The bearer token for --url submissions, from --token or --token-file."""
    if args.token:
        return args.token
    if args.token_file:
        for line in Path(args.token_file).read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                return line.split()[0]
        return None
    return None


def _submit_remote(args: argparse.Namespace, paths) -> int:
    from repro.core.persistence import (
        load_manifest_json,
        load_results_json,
        manifest_path_for,
    )
    from repro.registry.client import (
        DEFAULT_MAX_ATTEMPTS,
        SubmissionFailed,
        submit_results,
    )

    token = _read_token(args)
    if not token:
        print("error: --url submissions need --token or --token-file",
              file=sys.stderr)
        return 2
    max_attempts = args.max_attempts or DEFAULT_MAX_ATTEMPTS
    for path in paths:
        try:
            results = load_results_json(path)
            manifest = None
            manifest_path = manifest_path_for(path)
            if manifest_path.exists():
                manifest = load_manifest_json(manifest_path)
            outcome = submit_results(
                args.url, results, token, manifest=manifest,
                source=str(path), max_attempts=max_attempts,
            )
        except SubmissionFailed as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
        except (ValueError, OSError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
        replay = " (already submitted; replay acknowledged)" if outcome.duplicate else ""
        retried = f" after {outcome.attempts} attempts" if outcome.attempts > 1 else ""
        print(f"accepted {path} as submission #{outcome.submission_id} "
              f"({outcome.num_cells} cells){replay}{retried}")
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    from repro.core.persistence import (
        expand_result_paths,
        load_manifest_json,
        load_results_json,
        manifest_path_for,
    )
    from repro.registry import RegistryError, ResultsRegistry

    try:
        paths = expand_result_paths(args.inputs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.url:
        return _submit_remote(args, paths)
    registry = ResultsRegistry(args.registry)
    for path in paths:
        try:
            results = load_results_json(path)
            manifest = None
            manifest_path = manifest_path_for(path)
            if manifest_path.exists():
                manifest = load_manifest_json(manifest_path)
            record = registry.submit(
                results, submitter=args.submitter, source=str(path), manifest=manifest
            )
        except (RegistryError, ValueError, OSError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
        validated = " (manifest validated)" if manifest is not None else ""
        replay = " (already submitted; replay acknowledged)" if record.duplicate else ""
        print(f"accepted {path} as submission #{record.submission_id} "
              f"({record.num_cells} cells){validated}{replay}")
    have, total = registry.coverage()
    print(f"registry {args.registry}: {len(registry.submissions())} submissions, "
          f"{have} of {total} grid cells covered")
    return 0


def _command_leaderboard(args: argparse.Namespace) -> int:
    from repro.core.store import StoreError
    from repro.registry import RegistryError, ResultsRegistry

    registry = ResultsRegistry(args.registry)
    try:
        merged = registry.merged()
    except (RegistryError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    submissions = () if args.no_submissions else registry.submissions()
    print(render_leaderboard(merged, submissions))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.core.store import StoreError
    from repro.registry import (
        RegistryEmptyError,
        RegistryError,
        ResultsRegistry,
        load_tokens,
        serve_forever,
    )

    tokens = None
    if args.tokens_file:
        try:
            tokens = load_tokens(args.tokens_file)
        except (ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    registry = ResultsRegistry(args.registry)
    try:
        have, total = registry.coverage()
    except RegistryEmptyError as exc:
        # An empty registry is fine when the write path is enabled: the
        # first POST /api/submissions pins the spec and fills it.
        if tokens is None:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        have, total = 0, 0
    except (RegistryError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    mode = (f"writable by {len(tokens)} token(s)" if tokens else "read-only")
    print(f"serving registry {args.registry} ({have} of {total} grid cells, "
          f"{mode}) on http://{args.host}:{args.port} — endpoints: "
          "/api/health, /api/spec, /api/submissions, /api/leaderboard, "
          "/api/results, /api/cells (Ctrl-C to stop)")
    serve_forever(registry, host=args.host, port=args.port, tokens=tokens)
    return 0


def _command_journal(args: argparse.Namespace) -> int:
    from repro.core.persistence import repair_journal

    if args.journal_command == "repair":
        try:
            report = repair_journal(args.path, backup=not args.no_backup)
        except (ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not report.repaired:
            print(f"{report.path}: already intact "
                  f"({report.kept_lines} line(s)); nothing to repair")
            return 0
        backup = (f"; original saved as {report.backup_path}"
                  if report.backup_path else "")
        print(f"{report.path}: kept {report.kept_lines} intact line(s), "
              f"dropped {report.dropped_lines}{backup}")
        return 0
    print(f"error: unknown journal command {args.journal_command!r}",
          file=sys.stderr)
    return 2


def _command_profile(args: argparse.Namespace) -> int:
    profiles = profile_algorithms(
        args.algorithms, args.datasets, epsilon=args.epsilon, scale=args.scale, seed=args.seed
    )
    tables = profiles_as_tables(profiles)
    print("=== time (seconds) ===")
    print(render_resource_table(tables["time"], value_format="{:.3f}"))
    print("\n=== peak memory (MiB) ===")
    print(render_resource_table(tables["memory"], value_format="{:.2f}"))
    return 0


def _command_recommend(args: argparse.Namespace) -> int:
    recommendation = recommend_algorithm(
        num_nodes=args.nodes, average_clustering=args.acc, epsilon=args.epsilon,
        priority_query=args.query,
    )
    print(f"recommended algorithm: {recommendation.algorithm}")
    print(f"reason: {recommendation.reason}")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    algorithm = get_algorithm(args.algorithm)
    result = algorithm.generate(graph, epsilon=args.epsilon, rng=args.seed)
    synthetic = result.graph
    print(f"original:  {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"synthetic: {synthetic.num_nodes} nodes, {synthetic.num_edges} edges")
    print(f"guarantee: eps={result.guarantee.epsilon}, delta={result.guarantee.delta}, "
          f"model={result.guarantee.model.value}")
    if args.output:
        write_edge_list(synthetic, args.output,
                        header=f"{args.algorithm} on {args.dataset}, eps={args.epsilon}")
        print(f"wrote edge list to {args.output}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "merge":
        return _command_merge(args)
    if args.command == "export":
        return _command_export(args)
    if args.command == "submit":
        return _command_submit(args)
    if args.command == "leaderboard":
        return _command_leaderboard(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "journal":
        return _command_journal(args)
    if args.command == "profile":
        return _command_profile(args)
    if args.command == "recommend":
        return _command_recommend(args)
    if args.command == "lint":
        return run_lint(args)
    if args.command == "generate":
        return _command_generate(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
