"""Command-line interface for the PGB benchmark.

Mirrors the public benchmark platform's workflows from the terminal::

    python -m repro list                      # algorithms, datasets, queries
    python -m repro run --datasets ba --algorithms tmf dgg --epsilons 0.5 2 \
                        --queries num_edges modularity --scale 0.03
    python -m repro run --checkpoint run.jsonl --resume   # continue a killed run
    python -m repro run --shard 0/2 --output-json shard0.json   # half the grid
    python -m repro merge shard0.json shard1.json --output-json full.json
    python -m repro profile --datasets ba facebook --scale 0.03
    python -m repro recommend --nodes 5000 --acc 0.4 --epsilon 1.0
    python -m repro generate --dataset facebook --algorithm privgraph --epsilon 1 \
                        --output synthetic.txt

Every subcommand prints the same plain-text tables the benchmark harness uses,
so CLI output and bench output stay consistent.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.algorithms.registry import PGB_ALGORITHM_NAMES, get_algorithm, list_algorithms
from repro.core.profiling import profile_algorithms, profiles_as_tables
from repro.core.guidelines import recommend_algorithm
from repro.core.report import (
    render_best_count_table,
    render_per_query_table,
    render_resource_table,
    render_summary,
)
from repro.core.runner import run_benchmark
from repro.core.spec import PGB_EPSILONS, BenchmarkSpec
from repro.graphs.datasets import PGB_DATASET_NAMES, get_dataset, list_datasets, load_dataset
from repro.graphs.io import write_edge_list
from repro.queries.registry import PGB_QUERY_NAMES, list_queries


def _parse_shard(value: str) -> Tuple[int, int]:
    """Parse ``--shard i/k`` into ``(index, count)`` with validation."""
    try:
        index_text, count_text = value.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard must look like I/K (e.g. 0/2), got {value!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise argparse.ArgumentTypeError(
            f"shard index must satisfy 0 <= I < K, got {value!r}"
        )
    return index, count


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PGB: benchmark differentially private synthetic graph generation algorithms.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered algorithms, datasets and queries")

    run_parser = subparsers.add_parser("run", help="run a benchmark grid and print the tables")
    run_parser.add_argument("--algorithms", nargs="+", default=list(PGB_ALGORITHM_NAMES))
    run_parser.add_argument("--datasets", nargs="+", default=list(PGB_DATASET_NAMES))
    run_parser.add_argument("--epsilons", nargs="+", type=float, default=list(PGB_EPSILONS))
    run_parser.add_argument("--queries", nargs="+", default=list(PGB_QUERY_NAMES))
    run_parser.add_argument("--repetitions", type=int, default=1)
    run_parser.add_argument("--workers", type=int, default=1,
                            help="worker processes for grid cells; results are "
                                 "identical for any worker count")
    run_parser.add_argument("--scale", type=float, default=0.02)
    run_parser.add_argument("--seed", type=int, default=2024)
    run_parser.add_argument("--no-strict", action="store_true",
                            help="allow mixing privacy models / unusual epsilons")
    run_parser.add_argument("--output-json", default=None,
                            help="save the full results (spec + cells) as JSON")
    run_parser.add_argument("--output-csv", default=None,
                            help="export one CSV row per benchmark cell")
    run_parser.add_argument("--checkpoint", default=None, metavar="PATH",
                            help="append each completed grid cell to this JSONL "
                                 "journal so a killed run can be resumed")
    run_parser.add_argument("--resume", action="store_true",
                            help="skip cells already recorded in the --checkpoint "
                                 "journal (refused when the spec changed)")
    run_parser.add_argument("--shard", type=_parse_shard, default=None, metavar="I/K",
                            help="run only the grid cells with index ≡ I (mod K); "
                                 "combine shard outputs with `repro merge`")

    merge_parser = subparsers.add_parser(
        "merge", help="merge shard / partial result JSONs into one results file")
    merge_parser.add_argument("inputs", nargs="+",
                              help="result JSON files written by `repro run --output-json`")
    merge_parser.add_argument("--output-json", required=True,
                              help="write the merged results (spec + cells) here")
    merge_parser.add_argument("--output-csv", default=None,
                              help="also export the merged cells as CSV")

    profile_parser = subparsers.add_parser("profile", help="measure time and memory per algorithm")
    profile_parser.add_argument("--algorithms", nargs="+", default=list(PGB_ALGORITHM_NAMES))
    profile_parser.add_argument("--datasets", nargs="+", default=["ba"])
    profile_parser.add_argument("--epsilon", type=float, default=1.0)
    profile_parser.add_argument("--scale", type=float, default=0.02)
    profile_parser.add_argument("--seed", type=int, default=0)

    recommend_parser = subparsers.add_parser("recommend", help="suggest an algorithm for a scenario")
    recommend_parser.add_argument("--nodes", type=int, required=True)
    recommend_parser.add_argument("--acc", type=float, required=True,
                                  help="average clustering coefficient of the graph")
    recommend_parser.add_argument("--epsilon", type=float, required=True)
    recommend_parser.add_argument("--query", default=None,
                                  help="optional priority query (e.g. degree_distribution)")

    generate_parser = subparsers.add_parser("generate", help="generate one synthetic graph")
    generate_parser.add_argument("--dataset", required=True)
    generate_parser.add_argument("--algorithm", required=True)
    generate_parser.add_argument("--epsilon", type=float, required=True)
    generate_parser.add_argument("--scale", type=float, default=0.05)
    generate_parser.add_argument("--seed", type=int, default=0)
    generate_parser.add_argument("--output", default=None,
                                 help="write the synthetic graph as an edge list to this path")
    return parser


def _command_list() -> int:
    print("algorithms:")
    for name in list_algorithms():
        algorithm = get_algorithm(name)
        marker = " (PGB default)" if name in PGB_ALGORITHM_NAMES else ""
        print(f"  {name:<12} {algorithm.privacy_model.value:<10}{marker}")
    print("\ndatasets:")
    for name in list_datasets(include_verification=True):
        info = get_dataset(name)
        print(f"  {name:<12} |V|={info.paper_num_nodes:<7} |E|={info.paper_num_edges:<8} "
              f"ACC={info.paper_acc:<7} {info.domain}")
    print("\nqueries:")
    for name in list_queries():
        print(f"  {name}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    spec = BenchmarkSpec(
        algorithms=tuple(args.algorithms),
        datasets=tuple(args.datasets),
        epsilons=tuple(args.epsilons),
        queries=tuple(args.queries),
        repetitions=args.repetitions,
        scale=args.scale,
        seed=args.seed,
        strict=not args.no_strict,
        workers=args.workers,
    )
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint PATH", file=sys.stderr)
        return 2

    journal = None
    if args.checkpoint:
        from repro.core.persistence import CheckpointJournal, JournalMismatchError

        checkpoint_path = Path(args.checkpoint)
        if checkpoint_path.exists() and not args.resume:
            print(
                f"error: checkpoint {checkpoint_path} already exists; pass "
                "--resume to continue it or delete it to start over",
                file=sys.stderr,
            )
            return 2
        try:
            journal = CheckpointJournal.open(checkpoint_path, spec, resume=args.resume)
        except JournalMismatchError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if journal.completed:
            print(f"resuming from {checkpoint_path}: "
                  f"{len(journal.completed)} grid cells already journaled")

    total_tasks = len(spec.grid_tasks())
    if args.shard is not None:
        index, count = args.shard
        shard_tasks = sum(1 for position in range(total_tasks) if position % count == index)
        print(f"shard {index}/{count}: running {shard_tasks} of {total_tasks} grid cells")
    print(f"running {spec.num_experiments} single experiments...")
    results = run_benchmark(spec, journal=journal, shard=args.shard)
    print("\n=== best counts per (dataset, epsilon) — Definition 5 ===")
    print(render_best_count_table(results))
    print("\n=== best counts per query — Definition 6 ===")
    print(render_per_query_table(results))
    print("\n=== summary ===")
    print(render_summary(results))
    if args.output_json:
        from repro.core.persistence import save_results_json

        save_results_json(results, args.output_json)
        print(f"\nsaved JSON results to {args.output_json}")
    if args.output_csv:
        from repro.core.persistence import export_results_csv

        export_results_csv(results, args.output_csv)
        print(f"saved CSV results to {args.output_csv}")
    return 0


def _command_merge(args: argparse.Namespace) -> int:
    from repro.core.persistence import (
        export_results_csv,
        load_results_json,
        merge_results,
        save_results_json,
    )

    try:
        merged = merge_results([load_results_json(path) for path in args.inputs])
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    save_results_json(merged, args.output_json)
    total = len(merged.spec.grid_tasks()) * len(merged.spec.queries)
    print(f"merged {len(args.inputs)} result files: {len(merged.cells)} of "
          f"{total} grid cells; saved JSON results to {args.output_json}")
    if args.output_csv:
        export_results_csv(merged, args.output_csv)
        print(f"saved CSV results to {args.output_csv}")
    print("\n=== best counts per (dataset, epsilon) — Definition 5 ===")
    print(render_best_count_table(merged))
    print("\n=== summary ===")
    print(render_summary(merged))
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    profiles = profile_algorithms(
        args.algorithms, args.datasets, epsilon=args.epsilon, scale=args.scale, seed=args.seed
    )
    tables = profiles_as_tables(profiles)
    print("=== time (seconds) ===")
    print(render_resource_table(tables["time"], value_format="{:.3f}"))
    print("\n=== peak memory (MiB) ===")
    print(render_resource_table(tables["memory"], value_format="{:.2f}"))
    return 0


def _command_recommend(args: argparse.Namespace) -> int:
    recommendation = recommend_algorithm(
        num_nodes=args.nodes, average_clustering=args.acc, epsilon=args.epsilon,
        priority_query=args.query,
    )
    print(f"recommended algorithm: {recommendation.algorithm}")
    print(f"reason: {recommendation.reason}")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    algorithm = get_algorithm(args.algorithm)
    result = algorithm.generate(graph, epsilon=args.epsilon, rng=args.seed)
    synthetic = result.graph
    print(f"original:  {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"synthetic: {synthetic.num_nodes} nodes, {synthetic.num_edges} edges")
    print(f"guarantee: eps={result.guarantee.epsilon}, delta={result.guarantee.delta}, "
          f"model={result.guarantee.model.value}")
    if args.output:
        write_edge_list(synthetic, args.output,
                        header=f"{args.algorithm} on {args.dataset}, eps={args.epsilon}")
        print(f"wrote edge list to {args.output}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "merge":
        return _command_merge(args)
    if args.command == "profile":
        return _command_profile(args)
    if args.command == "recommend":
        return _command_recommend(args)
    if args.command == "generate":
        return _command_generate(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
