"""Static analysis for the reproduction's own invariants.

An AST rule engine (stdlib :mod:`ast`, no third-party dependency) with five
built-in families — DET (determinism), DPB (privacy-budget hygiene), FPR
(fingerprint classification), EXC (exception hygiene) and PRIV (private-name
crossings).  Run it as ``repro lint`` or ``python -m repro.analysis``; see
``docs/static_analysis.md`` for the rule catalogue and suppression syntax.
"""

from repro.analysis.engine import ModuleContext, Rule, lint_paths, lint_source
from repro.analysis.findings import Finding, LintReport, SuppressionUse
from repro.analysis.rules import default_rules

__all__ = [
    "Finding",
    "LintReport",
    "ModuleContext",
    "Rule",
    "SuppressionUse",
    "default_rules",
    "lint_paths",
    "lint_source",
]
