"""PRIV — no cross-module use of ``_underscore`` internals.

PR 6's ``pool._broken`` bug is the template: code in one module reached into
another module's private state, the private side changed shape, and the
reader had no signal that a contract was being crossed.  A leading
underscore is a promise that the name may change without notice — honouring
it across module boundaries is what keeps refactors local.

Codes
-----
- ``PRIV001`` — ``from somewhere import _name``: importing a private name
  from another module.  Make the name public (rename) or move the caller.
- ``PRIV002`` — attribute access ``module._name`` where ``module`` resolves
  through an import: same contract violation, spelled dotted.

Dunder names (``__init__``-style) are exempt — they are protocol, not
privacy.  Access through a *local variable* (``obj._attr``) is out of reach
statically, since the object's defining module is unknown; the rule catches
the import-rooted cases, which is where every real instance in this repo
has lived.  The one sanctioned exception is ``os._exit`` in the fault
injector: crashing a worker without cleanup is its documented purpose.
``getattr(obj, "_name", default)`` probes stay visible to reviewers as the
deliberate escape hatch (they carry a default; plain attribute access does
not).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding

#: Dotted names allowed despite the underscore: `os._exit` is the documented
#: hard-kill primitive of the fault injector (skips atexit/finally by design).
ALLOWED_DOTTED = frozenset({"os._exit"})


def _is_private(name: str) -> bool:
    return name.startswith("_") and not name.startswith("__")


class PrivRule(Rule):
    family = "PRIV"
    description = "no cross-module access to _underscore internals"

    def applies_to(self, context: ModuleContext) -> bool:
        return context.relpath.startswith("repro/")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if _is_private(alias.name):
                        source = ("." * node.level) + (node.module or "")
                        yield self.finding(
                            context, "001", node,
                            f"private `{alias.name}` imported from "
                            f"`{source}`; make it public or move the caller "
                            "into that module",
                        )
            elif isinstance(node, ast.Attribute) and _is_private(node.attr):
                base = context.resolve(node.value)
                if base is None:
                    continue
                dotted = f"{base}.{node.attr}"
                if dotted in ALLOWED_DOTTED:
                    continue
                yield self.finding(
                    context, "002", node,
                    f"cross-module access to private `{dotted}`; depend on "
                    "the module's public surface instead",
                )


__all__ = ["PrivRule", "ALLOWED_DOTTED"]
