"""DPB — privacy-budget hygiene: mechanisms take ε from the ledger, not math.

The paper's M4 principle (and the whole point of ``PrivacyBudget``) is that
every ε-split is explicit and ledger-audited.  A mechanism built from raw
arithmetic — ``LaplaceMechanism(epsilon=budget.epsilon / depth)`` — spends
privacy the ledger never saw, and keeping a separate ``budget.spend`` call
"in sync" by hand is exactly the bug class this rule removes: the two drift
the first time someone edits one and not the other.

``DPB001`` fires on any mechanism construction inside ``repro/algorithms/``
whose ``epsilon`` argument is not the *direct* result of a budget operation
(``spend`` / ``spend_fraction`` / ``spend_all_remaining`` / ``split`` /
``split_even``) in the same function.  "Direct result" is tracked through
assignments, tuple unpacking, ``for``-loop and comprehension targets, and
subscripts of a tracked name — so both of these pass::

    eps = budget.spend_fraction(0.5, label="edges")
    mech = LaplaceMechanism(epsilon=eps, sensitivity=1.0)

    levels = budget.split_even(depth, labels=labels)
    mechs = [LaplaceMechanism(epsilon=e, sensitivity=1.0) for e in levels]

while post-spend arithmetic (``epsilon=eps / 2``) still fails: halve the
spend, not the spent value.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Union

from repro.analysis.engine import ModuleContext, Rule, collect_assigned_names
from repro.analysis.findings import Finding

#: Mechanism classes whose ``epsilon`` must come from the ledger.
MECHANISM_CLASSES = frozenset({
    "LaplaceMechanism",
    "GeometricMechanism",
    "GaussianMechanism",
    "ExponentialMechanism",
    "RandomizedResponse",
})

#: ``PrivacyBudget`` methods whose return value is ledger-recorded ε.
BUDGET_METHODS = frozenset({
    "spend",
    "spend_fraction",
    "spend_all_remaining",
    "split",
    "split_even",
})

_ScopeRoot = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]


def _walk_scope(root: _ScopeRoot) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_budget_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in BUDGET_METHODS)


class DpbRule(Rule):
    family = "DPB"
    description = ("mechanism ε must be the direct result of a PrivacyBudget "
                   "spend/split in the same function")

    def applies_to(self, context: ModuleContext) -> bool:
        return context.relpath.startswith("repro/algorithms/")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        scopes: List[_ScopeRoot] = [context.tree]
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            yield from self._check_scope(context, scope)

    def _check_scope(self, context: ModuleContext,
                     scope: _ScopeRoot) -> Iterator[Finding]:
        derived = self._derived_names(scope)
        for node in _walk_scope(scope):
            if not isinstance(node, ast.Call):
                continue
            name = self._mechanism_name(node.func)
            if name is None:
                continue
            epsilon = self._epsilon_argument(node)
            if epsilon is None or not self._is_derived(epsilon, derived):
                yield self.finding(
                    context, "001", node,
                    f"`{name}` built from raw ε arithmetic; pass the result "
                    "of a PrivacyBudget spend/split from this function so the "
                    "ledger records the split",
                )

    @staticmethod
    def _mechanism_name(func: ast.AST) -> "str | None":
        if isinstance(func, ast.Name) and func.id in MECHANISM_CLASSES:
            return func.id
        if isinstance(func, ast.Attribute) and func.attr in MECHANISM_CLASSES:
            return func.attr
        return None

    @staticmethod
    def _epsilon_argument(call: ast.Call) -> "ast.AST | None":
        for keyword in call.keywords:
            if keyword.arg == "epsilon":
                return keyword.value
        if call.args:
            return call.args[0]
        return None

    @staticmethod
    def _is_derived(node: ast.AST, derived: Set[str]) -> bool:
        if _is_budget_call(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in derived
        if isinstance(node, ast.Subscript):
            return DpbRule._is_derived(node.value, derived)
        return False

    def _derived_names(self, scope: _ScopeRoot) -> Set[str]:
        """Names bound (directly or via iteration) to budget-spend results.

        Runs to a fixpoint so chains like spend → list → loop target resolve
        regardless of statement order inside the scope.
        """
        derived: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in _walk_scope(scope):
                if isinstance(node, ast.Assign):
                    if node.value is not None and self._is_derived(node.value, derived):
                        for target in node.targets:
                            for name in collect_assigned_names(target):
                                if name not in derived:
                                    derived.add(name)
                                    changed = True
                elif isinstance(node, ast.AnnAssign):
                    if node.value is not None and self._is_derived(node.value, derived):
                        for name in collect_assigned_names(node.target):
                            if name not in derived:
                                derived.add(name)
                                changed = True
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    if self._is_derived(node.iter, derived):
                        for name in collect_assigned_names(node.target):
                            if name not in derived:
                                derived.add(name)
                                changed = True
                elif isinstance(node, ast.comprehension):
                    if self._is_derived(node.iter, derived):
                        for name in collect_assigned_names(node.target):
                            if name not in derived:
                                derived.add(name)
                                changed = True
        return derived


__all__ = ["DpbRule", "MECHANISM_CLASSES", "BUDGET_METHODS"]
