"""DET — determinism: no ambient randomness or wall-clock in result paths.

Bit-identical runs at any worker count hinge on every random draw flowing
from the spec seed through keyed ``SeedSequence`` spawning (``utils/rng.py``).
A single ``np.random.rand`` or ``time.time()`` in an algorithm breaks that
silently: the run still "works", it just stops being reproducible.  DET bans
the ambient entropy sources from the result-affecting subpackages; RNG must
arrive as a threaded ``numpy.random.Generator`` / ``SeedSequence`` parameter.

Codes
-----
- ``DET001`` — legacy global-state ``numpy.random`` function (``rand``,
  ``seed``, ``shuffle``, ...).  The ``Generator``/``SeedSequence`` family and
  ``default_rng`` are allowed — they are explicit-state constructors.
- ``DET002`` — the stdlib ``random`` module (import or use).
- ``DET003`` — ``os.urandom`` (kernel entropy, unseedable).
- ``DET004`` — wall-clock reads: ``time.time``/``time_ns``,
  ``datetime.now``/``utcnow``, ``date.today``.  Monotonic timers
  (``perf_counter``) are fine — they measure duration, not identity.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding

#: Subpackages whose output feeds results (and therefore fingerprints).
#: ``core/shm.py`` is listed even though it is pure transport: workers
#: compute *from* its attached views, so ambient entropy there would be just
#: as result-corrupting as in a generator (segment names are random, but
#: they come from the stdlib's ``SharedMemory`` constructor and never feed
#: any computation).
RESULT_AFFECTING: Tuple[str, ...] = (
    "repro/algorithms/",
    "repro/generators/",
    "repro/community/",
    "repro/metrics/",
    "repro/queries/",
    "repro/core/shm.py",
)

#: Modules exempt even if they ever move under a scoped directory: the RNG
#: threading helpers are the one sanctioned place that touches seeding APIs.
ALLOWLIST: Tuple[str, ...] = ("repro/utils/rng.py",)

#: ``numpy.random`` members that are explicit-state and therefore allowed.
_NUMPY_ALLOWED = frozenset({
    "Generator",
    "default_rng",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
})

#: Exact dotted names that read the wall clock.
_WALL_CLOCK = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
})


class DetRule(Rule):
    family = "DET"
    description = ("no ambient RNG (legacy numpy.random, stdlib random, "
                   "os.urandom) or wall-clock in result-affecting modules")

    def applies_to(self, context: ModuleContext) -> bool:
        if context.relpath in ALLOWLIST:
            return False
        return context.relpath.startswith(RESULT_AFFECTING)

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            context, "002", node,
                            "stdlib `random` imported in a result-affecting "
                            "module; thread a numpy Generator instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and not node.level:
                    yield self.finding(
                        context, "002", node,
                        "stdlib `random` imported in a result-affecting "
                        "module; thread a numpy Generator instead",
                    )
            elif isinstance(node, (ast.Attribute, ast.Name)):
                yield from self._check_reference(context, node)

    def _check_reference(self, context: ModuleContext,
                         node: ast.AST) -> Iterator[Finding]:
        dotted = context.resolve(node)
        if dotted is None:
            return
        if dotted.startswith("numpy.random."):
            member = dotted.split(".")[2]
            if member not in _NUMPY_ALLOWED:
                yield self.finding(
                    context, "001", node,
                    f"legacy global-state `{dotted}`; draw from a threaded "
                    "Generator parameter instead",
                )
        elif dotted.startswith("random.") and not dotted.startswith("random._"):
            yield self.finding(
                context, "002", node,
                f"stdlib `{dotted}` draws from hidden global state; thread a "
                "numpy Generator instead",
            )
        elif dotted == "os.urandom":
            yield self.finding(
                context, "003", node,
                "`os.urandom` is unseedable kernel entropy; derive bytes from "
                "the threaded SeedSequence instead",
            )
        elif dotted in _WALL_CLOCK:
            yield self.finding(
                context, "004", node,
                f"wall-clock `{dotted}` makes results time-dependent; take "
                "timestamps outside result paths",
            )


__all__ = ["DetRule", "RESULT_AFFECTING", "ALLOWLIST"]
