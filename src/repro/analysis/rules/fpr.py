"""FPR — fingerprint classification: every spec field is accounted for.

``BenchmarkSpec.fingerprint()`` decides which runs are "the same experiment"
— journals resume against it and the registry refuses mismatched
submissions.  A new spec field that silently stays out of the fingerprint
means two *different* experiments can merge; a field that is execution-only
(``workers``, timeouts, fault injection) must be *declared* so, in the
``EXECUTION_ONLY_FIELDS`` constant next to the class, so the omission is a
reviewed decision instead of an accident.

Codes
-----
- ``FPR001`` — spec field neither fingerprinted nor listed in
  ``EXECUTION_ONLY_FIELDS`` (anchored at the field's declaration).
- ``FPR002`` — stale ``EXECUTION_ONLY_FIELDS`` entry naming no spec field.
- ``FPR003`` — field both fingerprinted and declared execution-only: the two
  claims contradict; pick one.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding

#: The module that owns the spec/fingerprint pair.
SPEC_MODULE = "repro/core/spec.py"
SPEC_CLASS = "BenchmarkSpec"
EXCLUSION_CONSTANT = "EXECUTION_ONLY_FIELDS"


class FprRule(Rule):
    family = "FPR"
    description = ("every BenchmarkSpec field must be fingerprinted or "
                   "declared execution-only")

    def applies_to(self, context: ModuleContext) -> bool:
        return context.relpath == SPEC_MODULE

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        spec = self._find_spec_class(context.tree)
        if spec is None:
            return
        fields = self._spec_fields(spec)
        fingerprinted = self._fingerprint_keys(spec)
        exclusion_node, excluded = self._exclusions(context.tree)

        field_names = {name for name, _ in fields}
        for name, node in fields:
            if name not in fingerprinted and name not in excluded:
                yield self.finding(
                    context, "001", node,
                    f"spec field `{name}` is neither fingerprinted nor listed "
                    f"in {EXCLUSION_CONSTANT}; classify it",
                )
            elif name in fingerprinted and name in excluded:
                anchor = exclusion_node if exclusion_node is not None else node
                yield self.finding(
                    context, "003", anchor,
                    f"spec field `{name}` is both fingerprinted and declared "
                    "execution-only; the classifications contradict",
                )
        if exclusion_node is not None:
            for name in sorted(excluded - field_names):
                yield self.finding(
                    context, "002", exclusion_node,
                    f"{EXCLUSION_CONSTANT} entry `{name}` names no "
                    f"{SPEC_CLASS} field; remove the stale entry",
                )

    @staticmethod
    def _find_spec_class(tree: ast.Module) -> Optional[ast.ClassDef]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == SPEC_CLASS:
                return node
        return None

    @staticmethod
    def _spec_fields(spec: ast.ClassDef) -> List[Tuple[str, ast.AnnAssign]]:
        fields: List[Tuple[str, ast.AnnAssign]] = []
        for statement in spec.body:
            if (isinstance(statement, ast.AnnAssign)
                    and isinstance(statement.target, ast.Name)):
                annotation = ast.dump(statement.annotation)
                if "ClassVar" in annotation:
                    continue
                fields.append((statement.target.id, statement))
        return fields

    @staticmethod
    def _fingerprint_keys(spec: ast.ClassDef) -> Set[str]:
        keys: Set[str] = set()
        for statement in spec.body:
            if (isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and statement.name == "fingerprint"):
                for node in ast.walk(statement):
                    if isinstance(node, ast.Dict):
                        for key in node.keys:
                            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                                keys.add(key.value)
        return keys

    @staticmethod
    def _exclusions(tree: ast.Module) -> Tuple[Optional[ast.stmt], Set[str]]:
        for statement in tree.body:
            if isinstance(statement, ast.Assign):
                targets = statement.targets
                value = statement.value
            elif isinstance(statement, ast.AnnAssign):
                targets = [statement.target]
                value = statement.value
            else:
                continue
            if not any(isinstance(target, ast.Name) and target.id == EXCLUSION_CONSTANT
                       for target in targets):
                continue
            names: Set[str] = set()
            if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(element.value, str):
                        names.add(element.value)
            return statement, names
        return None, set()


__all__ = ["FprRule", "SPEC_MODULE", "SPEC_CLASS", "EXCLUSION_CONSTANT"]
