"""EXC — exception hygiene around the fault-injection escape hatch.

The chaos layer's fault directives (``InjectedWorkerCrash``,
``InjectedWorkerHang``) derive from ``BaseException`` precisely so that the
runner's legitimate ``except Exception`` retry paths cannot swallow them.
That design only holds if nothing in the unit-execution path catches
``BaseException`` (or uses a bare ``except:``, which is the same thing)
without unconditionally re-raising.

Codes
-----
- ``EXC001`` — bare ``except:`` (anywhere in the package; it can swallow
  ``KeyboardInterrupt`` and the fault directives alike).
- ``EXC002`` — ``except BaseException`` without a ``raise`` in the handler,
  in ``core/runner.py`` / ``core/pool.py`` — the unit paths that must let
  fault directives escape.
- ``EXC003`` — catching a fault directive class and *silently discarding*
  it (a handler body of only ``pass``/``...``/``continue``), in the same two
  modules.  Catching a directive to charge it against the retry budget is
  the designed recovery point (the serial twin of the pool's crash
  recovery); catching it and doing nothing re-creates the bug the
  directives exist to surface.

Note ``except Exception`` is deliberately *allowed*: directives being
``BaseException`` subclasses is exactly what makes it safe.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding

#: Modules on the unit-execution path where a swallowed directive breaks
#: crash/hang recovery (see docs/fault_tolerance.md).  The registry service
#: modules are held to the same standard: the submission server and client
#: sit on the crash-recovery path of the service chaos harness, and a
#: swallowed BaseException there hides an injected service fault.
UNIT_PATH_MODULES: Tuple[str, ...] = (
    "repro/core/runner.py",
    "repro/core/pool.py",
    "repro/registry/server.py",
    "repro/registry/client.py",
)

#: The BaseException-derived fault directive classes from core/faults.py.
FAULT_DIRECTIVES = frozenset({"InjectedWorkerCrash", "InjectedWorkerHang"})


def _caught_names(handler: ast.ExceptHandler) -> List[str]:
    nodes: List[ast.AST] = []
    if isinstance(handler.type, ast.Tuple):
        nodes.extend(handler.type.elts)
    elif handler.type is not None:
        nodes.append(handler.type)
    names: List[str] = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


def _silently_discards(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing with the exception."""
    for statement in handler.body:
        if isinstance(statement, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if (isinstance(statement, ast.Expr)
                and isinstance(statement.value, ast.Constant)):
            continue  # docstring or bare `...`
        return False
    return True


class ExcRule(Rule):
    family = "EXC"
    description = ("no bare except; no swallowed BaseException/fault "
                   "directives on the unit-execution path")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        unit_path = context.relpath in UNIT_PATH_MODULES
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    context, "001", node,
                    "bare `except:` catches BaseException and can swallow "
                    "fault directives and KeyboardInterrupt; name the "
                    "exception types",
                )
                continue
            if not unit_path:
                continue
            caught = _caught_names(node)
            if "BaseException" in caught and not _reraises(node):
                yield self.finding(
                    context, "002", node,
                    "`except BaseException` without re-raise on the unit path "
                    "swallows injected fault directives; re-raise or narrow "
                    "the catch",
                )
            directives = sorted(FAULT_DIRECTIVES.intersection(caught))
            if directives and _silently_discards(node):
                yield self.finding(
                    context, "003", node,
                    f"fault directive `{directives[0]}` caught and silently "
                    "discarded; recover it (charge the retry budget) or let "
                    "it escape",
                )


__all__ = ["ExcRule", "UNIT_PATH_MODULES", "FAULT_DIRECTIVES"]
