"""The built-in rule families.

``default_rules()`` is the single registration point: a new family is one
module in this package plus one entry here (see docs/static_analysis.md).
"""

from __future__ import annotations

from typing import List

from repro.analysis.engine import Rule
from repro.analysis.rules.det import DetRule
from repro.analysis.rules.dpb import DpbRule
from repro.analysis.rules.exc import ExcRule
from repro.analysis.rules.fpr import FprRule
from repro.analysis.rules.priv import PrivRule


def default_rules() -> List[Rule]:
    """One fresh instance of every built-in rule family."""
    return [DetRule(), DpbRule(), FprRule(), ExcRule(), PrivRule()]


__all__ = [
    "DetRule",
    "DpbRule",
    "ExcRule",
    "FprRule",
    "PrivRule",
    "default_rules",
]
