"""Command-line front end: ``repro lint`` and ``python -m repro.analysis``.

Exit codes: 0 — clean; 1 — active findings (or, under ``--strict``,
suppression comments missing from the committed baseline); 2 — usage error
(bad path, unreadable baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Rule, lint_paths, package_path
from repro.analysis.findings import LintReport, SuppressionUse
from repro.analysis.rules import default_rules

#: Where justified suppressions live; ``--strict`` rejects any suppression
#: comment not covered here.  Committed empty on purpose: the repo carries no
#: suppressions today, and adding one means editing this file in the same PR.
DEFAULT_BASELINE = "tools/lint_suppressions.json"

#: Paths linted when none are given: the package itself.
DEFAULT_PATHS = ("src/repro",)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``lint`` options (used by ``repro lint`` too)."""
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {DEFAULT_PATHS[0]})",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="human-readable findings or the JSON report consumed by CI",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="additionally fail on suppression comments absent from the "
             "baseline file",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help=f"justified-suppression baseline (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--select", action="append", default=None, metavar="FAMILY",
        help="run only these rule families/codes (repeatable), e.g. "
             "--select DET --select PRIV002",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the rule families and exit",
    )


def _selected_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    rules = default_rules()
    if not select:
        return rules
    wanted = {token.strip().upper() for token in select}
    chosen = [rule for rule in rules
              if rule.family in wanted
              or any(token.startswith(rule.family) for token in wanted)]
    return chosen


def _load_baseline(path: str) -> Set[Tuple[str, str]]:
    """The baseline as ``(package_path, rule_token)`` pairs."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return set()
    data = json.loads(baseline_path.read_text(encoding="utf-8"))
    allowed: Set[Tuple[str, str]] = set()
    for entry in data.get("suppressions", []):
        for rule in entry.get("rules", []):
            allowed.add((entry["path"], rule))
    return allowed


def _unbaselined(report: LintReport,
                 allowed: Set[Tuple[str, str]]) -> List[SuppressionUse]:
    missing: List[SuppressionUse] = []
    for use in report.suppressions:
        relpath = package_path(use.path)
        if any((relpath, rule) not in allowed for rule in use.rules):
            missing.append(use)
    return missing


def _print_human(report: LintReport, rogue: List[SuppressionUse],
                 strict: bool) -> None:
    for finding in report.active:
        print(finding.render())
        if finding.snippet:
            print(f"    {finding.snippet}")
    if strict:
        for use in rogue:
            kind = "noqa-file" if use.file_level else "noqa"
            print(f"{use.path}:{use.line}:0: SUPPRESS000 `{kind}"
                  f"[{', '.join(use.rules)}]` is not in the committed "
                  "baseline")
    active = len(report.active)
    masked = len(report.masked)
    summary = ", ".join(f"{family}: {count}"
                        for family, count in report.family_counts().items())
    tail = f" ({summary})" if summary else ""
    masked_note = f", {masked} suppressed" if masked else ""
    print(f"{report.files_checked} files checked, "
          f"{active} finding{'s' if active != 1 else ''}{tail}{masked_note}")


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.family}: {rule.description}")
        return 0
    rules = _selected_rules(args.select)
    try:
        report = lint_paths(args.paths, rules)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    try:
        allowed = _load_baseline(args.baseline) if args.strict else set()
    except (OSError, ValueError) as exc:
        print(f"repro lint: cannot read baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return 2
    rogue = _unbaselined(report, allowed) if args.strict else []
    if args.format == "json":
        payload = report.as_dict()
        if args.strict:
            payload["unbaselined_suppressions"] = [u.as_dict() for u in rogue]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        _print_human(report, rogue, args.strict)
    failed = bool(report.active) or (args.strict and bool(rogue))
    return 1 if failed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="AST lint for the repo's determinism, privacy-budget and "
                    "fingerprint invariants",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


__all__ = ["add_lint_arguments", "run_lint", "main", "DEFAULT_BASELINE"]
