"""The rule engine: module contexts, the :class:`Rule` plugin base class,
suppression parsing and the lint driver.

Design, in one paragraph: a :class:`ModuleContext` is built once per file
(source, AST, an import-alias table and the parsed suppression comments);
every registered :class:`Rule` receives the context and yields typed
:class:`~repro.analysis.findings.Finding` objects; the driver applies
per-line / per-file ``# repro: noqa[RULE]`` suppressions and assembles a
:class:`~repro.analysis.findings.LintReport`.  Rules are pure functions of
the context — no rule mutates shared state, so adding a rule is one module
under :mod:`repro.analysis.rules` (see ``docs/static_analysis.md``).
"""

from __future__ import annotations

import abc
import ast
import dataclasses
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.analysis.findings import Finding, LintReport, SuppressionUse

#: Suppression comments, matched against real COMMENT tokens only (so a
#: docstring *mentioning* the syntax is not a suppression) and anchored at
#: the start of the comment.  Inline form suppresses on its own line,
#: ``-file`` form suppresses for the whole module.
_SUPPRESS_RE = re.compile(r"^#\s*repro:\s*noqa\[([A-Z0-9,\s]+)\]")
_SUPPRESS_FILE_RE = re.compile(r"^#\s*repro:\s*noqa-file\[([A-Z0-9,\s]+)\]")


def package_path(path: str) -> str:
    """The path of ``path`` relative to the ``repro`` package, POSIX-style.

    ``/root/repo/src/repro/algorithms/der.py`` → ``repro/algorithms/der.py``.
    Rules scope themselves by this (e.g. DET applies only to the
    result-affecting subpackages), so the linter behaves identically whether
    it is pointed at ``src/repro``, a single file, or an installed tree.
    Paths with no ``repro`` component are returned unchanged — corpus tests
    pass virtual paths like ``repro/algorithms/bad.py`` directly.
    """
    parts = Path(path).as_posix().split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return Path(path).as_posix()


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one Python module."""

    path: str
    source: str
    tree: ast.Module
    #: Path relative to the ``repro`` package root (see :func:`package_path`).
    relpath: str = ""
    lines: List[str] = field(default_factory=list)
    #: 1-based line → rule/family tokens suppressed on that line.
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: Rule/family tokens suppressed for the whole file.
    file_suppressions: Set[str] = field(default_factory=set)
    #: Every suppression comment found (for ``--strict`` auditing).
    suppression_uses: List[SuppressionUse] = field(default_factory=list)
    #: Local name → dotted module/attribute path, from import statements.
    imports: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, path: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        context = cls(path=path, source=source, tree=tree,
                      relpath=package_path(path), lines=source.splitlines())
        context._parse_suppressions()
        context._collect_imports()
        return context

    # -- construction helpers ----------------------------------------------
    def _parse_suppressions(self) -> None:
        """Collect suppression comments from real COMMENT tokens.

        Tokenising (rather than grepping lines) means docstrings and string
        literals that merely *mention* the syntax are never treated as
        suppressions — which is also what lets the linter's own documentation
        stay suppression-free.
        """
        for token in tokenize.generate_tokens(io.StringIO(self.source).readline):
            if token.type != tokenize.COMMENT:
                continue
            lineno = token.start[0]
            file_match = _SUPPRESS_FILE_RE.match(token.string)
            if file_match:
                tokens = _split_tokens(file_match.group(1))
                self.file_suppressions.update(tokens)
                self.suppression_uses.append(
                    SuppressionUse(self.path, lineno, tuple(sorted(tokens)),
                                   file_level=True)
                )
                continue
            match = _SUPPRESS_RE.match(token.string)
            if match:
                tokens = _split_tokens(match.group(1))
                self.line_suppressions.setdefault(lineno, set()).update(tokens)
                self.suppression_uses.append(
                    SuppressionUse(self.path, lineno, tuple(sorted(tokens)))
                )

    def _collect_imports(self) -> None:
        """Build the local-name → dotted-path table used by :meth:`resolve`."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds the top name ``numpy``.
                        top = alias.name.split(".")[0]
                        self.imports[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: resolution not needed here
                    module = "." * node.level + (node.module or "")
                else:
                    module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{module}.{alias.name}" if module else alias.name

    # -- rule utilities -----------------------------------------------------
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to a dotted module path, if importable.

        ``np.random.rand`` → ``"numpy.random.rand"`` (given ``import numpy as
        np``); a chain rooted in a local variable returns ``None``, so rules
        never mistake ``generator.random()`` for the stdlib ``random`` module.
        """
        if isinstance(node, ast.Name):
            return self.imports.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_suppressed(self, finding: Finding) -> bool:
        tokens = set(self.file_suppressions)
        tokens |= self.line_suppressions.get(finding.line, set())
        return finding.rule in tokens or finding.family in tokens


def _split_tokens(raw: str) -> Set[str]:
    return {token.strip() for token in raw.split(",") if token.strip()}


class Rule(abc.ABC):
    """Base class of a rule family plugin.

    A rule family owns a prefix (``family``, e.g. ``"DET"``) and emits
    findings whose codes start with that prefix.  ``applies_to`` scopes the
    family by package path; ``check`` yields the findings.
    """

    #: Family prefix, e.g. ``"DET"``; finding codes are ``f"{family}{nnn}"``.
    family: str = "RULE"
    #: One-line description shown by ``repro lint --list-rules``.
    description: str = ""

    def applies_to(self, context: ModuleContext) -> bool:
        """Whether this family runs on ``context`` at all (default: yes)."""
        return True

    @abc.abstractmethod
    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield every violation found in ``context``."""

    def finding(self, context: ModuleContext, code: str, node: ast.AST,
                message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=f"{self.family}{code}",
            family=self.family,
            path=context.path,
            line=lineno,
            col=col,
            message=message,
            snippet=context.snippet(lineno),
        )


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into the sorted list of ``*.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {raw}")
    seen: Set[Path] = set()
    unique: List[Path] = []
    for path in out:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _run_rules_on_context(context: ModuleContext,
                          rules: Sequence[Rule]) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(context):
            continue
        for finding in rule.check(context):
            if context.is_suppressed(finding):
                finding = dataclasses.replace(finding, suppressed=True)
            findings.append(finding)
    return findings


def lint_source(source: str, path: str,
                rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint a source string as if it lived at ``path`` (corpus-test entry).

    A syntax error becomes a single ``PARSE000`` finding rather than an
    exception, mirroring how :func:`lint_paths` treats unparsable files.
    """
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    try:
        context = ModuleContext.from_source(source, path)
    except SyntaxError as exc:
        return [Finding(rule="PARSE000", family="PARSE", path=path,
                        line=exc.lineno or 1, col=exc.offset or 0,
                        message=f"syntax error: {exc.msg}")]
    return _run_rules_on_context(context, rules)


def lint_paths(paths: Sequence[str],
               rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Lint every Python file under ``paths`` and return the full report."""
    if rules is None:
        from repro.analysis.rules import default_rules

        rules = default_rules()
    report = LintReport()
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        path_text = str(file_path)
        try:
            context = ModuleContext.from_source(source, path_text)
        except SyntaxError as exc:
            report.findings.append(
                Finding(rule="PARSE000", family="PARSE", path=path_text,
                        line=exc.lineno or 1, col=exc.offset or 0,
                        message=f"syntax error: {exc.msg}")
            )
            report.files_checked += 1
            continue
        report.extend(_run_rules_on_context(context, rules))
        report.suppressions.extend(context.suppression_uses)
        report.files_checked += 1
    return report


def collect_assigned_names(target: ast.AST) -> Iterable[str]:
    """Every plain name bound by an assignment/loop target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from collect_assigned_names(element)
    elif isinstance(target, ast.Starred):
        yield from collect_assigned_names(target.value)


__all__ = [
    "ModuleContext",
    "Rule",
    "package_path",
    "iter_python_files",
    "lint_source",
    "lint_paths",
    "collect_assigned_names",
]
