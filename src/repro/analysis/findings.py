"""Typed lint findings.

A :class:`Finding` is one rule violation at one source location.  Findings are
plain frozen dataclasses so rules stay side-effect free and the CLI can sort,
serialise (``--format json``) and diff them without touching rule internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        Full rule code, e.g. ``"DET001"``.
    family:
        Rule family prefix, e.g. ``"DET"`` — the granularity at which
        suppressions and ``--select`` operate.
    path:
        Path of the offending file as given to the linter.
    line / col:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable description of the violation.
    snippet:
        The stripped source line, for context in reports.
    suppressed:
        True when a ``# repro: noqa[...]`` comment covers this finding; kept
        (rather than dropped) so ``--strict`` can audit suppression usage.
    """

    rule: str
    family: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    suppressed: bool = False

    @property
    def location(self) -> Tuple[str, int, int]:
        """``(path, line, col)`` — the sort key of a report."""
        return (self.path, self.line, self.col)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form used by ``--format json``."""
        return {
            "rule": self.rule,
            "family": self.family,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "suppressed": self.suppressed,
        }

    def render(self) -> str:
        """The classic one-line ``path:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class SuppressionUse:
    """One ``# repro: noqa[...]`` comment found in a linted file.

    Tracked independently of findings so ``--strict`` can refuse suppressions
    that are not justified in the committed baseline — even ones that
    currently mask nothing.
    """

    path: str
    line: int
    rules: Tuple[str, ...]
    file_level: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rules": list(self.rules),
            "file_level": self.file_level,
        }


@dataclass
class LintReport:
    """The outcome of one lint run: findings, suppressions and file count."""

    findings: List[Finding] = field(default_factory=list)
    suppressions: List[SuppressionUse] = field(default_factory=list)
    files_checked: int = 0

    @property
    def active(self) -> List[Finding]:
        """Findings not masked by a suppression comment, sorted by location."""
        return sorted(
            (finding for finding in self.findings if not finding.suppressed),
            key=lambda finding: (finding.location, finding.rule),
        )

    @property
    def masked(self) -> List[Finding]:
        """Findings masked by a suppression comment, sorted by location."""
        return sorted(
            (finding for finding in self.findings if finding.suppressed),
            key=lambda finding: (finding.location, finding.rule),
        )

    def family_counts(self) -> Dict[str, int]:
        """Active finding count per rule family (for the summary line)."""
        counts: Dict[str, int] = {}
        for finding in self.active:
            counts[finding.family] = counts.get(finding.family, 0) + 1
        return dict(sorted(counts.items()))

    def extend(self, findings: Sequence[Finding]) -> None:
        self.findings.extend(findings)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form used by ``--format json`` and CI annotations."""
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "findings": [finding.as_dict() for finding in self.active],
            "suppressed": [finding.as_dict() for finding in self.masked],
            "suppressions": [use.as_dict() for use in self.suppressions],
            "summary": self.family_counts(),
        }


__all__ = ["Finding", "SuppressionUse", "LintReport"]
