"""PGB reproduction: a benchmark for differentially private synthetic graph
generation algorithms.

The package follows the paper's 4-tuple decomposition:

* **M** (mechanisms) — :mod:`repro.algorithms`, built on the DP substrate in
  :mod:`repro.dp` and the graph constructors in :mod:`repro.generators`;
* **G** (graph datasets) — :mod:`repro.graphs`;
* **P** (privacy requirements) — :class:`repro.core.BenchmarkSpec` epsilons;
* **U** (utility) — :mod:`repro.queries` and :mod:`repro.metrics`.

Quick start::

    from repro import BenchmarkSpec, run_benchmark, render_best_count_table

    spec = BenchmarkSpec.smoke_test()
    results = run_benchmark(spec)
    print(render_best_count_table(results))
"""

from repro.algorithms import (
    DGG,
    DER,
    DPdK,
    GraphGenerator,
    PrivGraph,
    PrivHRG,
    PrivSKG,
    TmF,
    get_algorithm,
    list_algorithms,
    make_default_algorithms,
)
from repro.core import (
    BenchmarkRunner,
    BenchmarkResults,
    BenchmarkSpec,
    best_count_by_dataset,
    best_count_by_query,
    open_store,
    profile_algorithms,
    recommend_algorithm,
    render_benchmark_tables,
    render_best_count_table,
    render_error_table,
    render_leaderboard,
    render_resource_table,
)
from repro.core.runner import run_benchmark
from repro.graphs import Graph, get_dataset, list_datasets, load_dataset
from repro.queries import get_query, list_queries, make_default_queries
from repro.registry import ResultsRegistry

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # algorithms
    "GraphGenerator",
    "DPdK",
    "TmF",
    "PrivSKG",
    "PrivHRG",
    "PrivGraph",
    "DGG",
    "DER",
    "get_algorithm",
    "list_algorithms",
    "make_default_algorithms",
    # core
    "BenchmarkSpec",
    "BenchmarkRunner",
    "BenchmarkResults",
    "run_benchmark",
    "best_count_by_dataset",
    "best_count_by_query",
    "profile_algorithms",
    "recommend_algorithm",
    "render_best_count_table",
    "render_error_table",
    "render_resource_table",
    "render_benchmark_tables",
    "render_leaderboard",
    # results platform
    "open_store",
    "ResultsRegistry",
    # graphs
    "Graph",
    "get_dataset",
    "list_datasets",
    "load_dataset",
    # queries
    "get_query",
    "list_queries",
    "make_default_queries",
]
