"""Scalar and vector error metrics (E1, E2, E7, E8 in the paper's Table IV).

All metrics follow the "smaller is better" convention and return plain floats.
Relative error against a zero ground truth falls back to the absolute error,
matching how the surveyed publications handle degenerate queries (e.g. the
triangle count of a triangle-free road network).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def relative_error(true_value: float, synthetic_value: float) -> float:
    """RE (E1): |Q(G) - Q(G')| / |Q(G)|; absolute error when Q(G) = 0."""
    true_value = float(true_value)
    synthetic_value = float(synthetic_value)
    difference = abs(true_value - synthetic_value)
    if true_value == 0.0:
        return difference
    return difference / abs(true_value)


def mean_relative_error(true_values: Sequence[float], synthetic_values: Sequence[float]) -> float:
    """MRE (E2): mean of per-element absolute differences divided by the true mean.

    The paper defines MRE as (1/n) Σ |Q(G_i) - Q(G'_i)| over per-node results;
    we normalise by the mean magnitude of the true values so the score is
    scale-free, and fall back to the raw mean absolute difference when the
    true values are all zero.
    """
    true_arr = np.asarray(true_values, dtype=float)
    synthetic_arr = np.asarray(synthetic_values, dtype=float)
    if true_arr.shape != synthetic_arr.shape:
        raise ValueError("true and synthetic value arrays must have the same shape")
    if true_arr.size == 0:
        return 0.0
    mean_abs_difference = float(np.mean(np.abs(true_arr - synthetic_arr)))
    scale = float(np.mean(np.abs(true_arr)))
    if scale == 0.0:
        return mean_abs_difference
    return mean_abs_difference / scale


def mean_absolute_error(true_values: Sequence[float], synthetic_values: Sequence[float]) -> float:
    """MAE (E7): mean absolute per-element difference."""
    true_arr = np.asarray(true_values, dtype=float)
    synthetic_arr = np.asarray(synthetic_values, dtype=float)
    if true_arr.shape != synthetic_arr.shape:
        raise ValueError("true and synthetic value arrays must have the same shape")
    if true_arr.size == 0:
        return 0.0
    return float(np.mean(np.abs(true_arr - synthetic_arr)))


def mean_squared_error(true_values: Sequence[float], synthetic_values: Sequence[float]) -> float:
    """MSE (E8): mean squared per-element difference."""
    true_arr = np.asarray(true_values, dtype=float)
    synthetic_arr = np.asarray(synthetic_values, dtype=float)
    if true_arr.shape != synthetic_arr.shape:
        raise ValueError("true and synthetic value arrays must have the same shape")
    if true_arr.size == 0:
        return 0.0
    return float(np.mean((true_arr - synthetic_arr) ** 2))


__all__ = [
    "relative_error",
    "mean_relative_error",
    "mean_absolute_error",
    "mean_squared_error",
]
