"""Distribution-comparison metrics (E3, E4, E5 in the paper's Table IV).

The degree-distribution query (Q6) and the distance-distribution query (Q9)
compare a whole distribution rather than a scalar.  The three metrics the
surveyed papers use are KL divergence, Hellinger distance and the
Kolmogorov–Smirnov statistic.  Inputs can be unnormalised histograms of
different lengths; they are padded to a common support and normalised here.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def _align(first: Sequence[float], second: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Pad two histograms to a common length and normalise them to sum to 1."""
    first_arr = np.asarray(first, dtype=float)
    second_arr = np.asarray(second, dtype=float)
    if first_arr.ndim != 1 or second_arr.ndim != 1:
        raise ValueError("distributions must be one-dimensional")
    if np.any(first_arr < 0) or np.any(second_arr < 0):
        raise ValueError("distributions must be non-negative")
    length = max(first_arr.size, second_arr.size, 1)
    first_padded = np.zeros(length)
    second_padded = np.zeros(length)
    first_padded[: first_arr.size] = first_arr
    second_padded[: second_arr.size] = second_arr
    first_total = first_padded.sum()
    second_total = second_padded.sum()
    if first_total > 0:
        first_padded /= first_total
    if second_total > 0:
        second_padded /= second_total
    return first_padded, second_padded


def kl_divergence(true_distribution: Sequence[float], synthetic_distribution: Sequence[float],
                  smoothing: float = 1e-9) -> float:
    """KL(P_true || P_synthetic) (E3), with additive smoothing to keep it finite.

    The smoothing denominator is the smoothed vector's actual mass: 1 for a
    normalised histogram (the benchmark path — values unchanged bit for bit)
    and ``smoothing · n`` for a degenerate all-zero one, which turns the
    zero-mass input into the uniform distribution instead of a near-zero
    vector whose KL against a real distribution could dip negative.
    """
    p, q = _align(true_distribution, synthetic_distribution)
    p = (p + smoothing) / ((1.0 if p.sum() > 0 else 0.0) + smoothing * p.size)
    q = (q + smoothing) / ((1.0 if q.sum() > 0 else 0.0) + smoothing * q.size)
    return float(np.sum(p * np.log(p / q)))


def hellinger_distance(true_distribution: Sequence[float],
                       synthetic_distribution: Sequence[float]) -> float:
    """Hellinger distance (E4): in [0, 1], 0 iff the distributions coincide."""
    p, q = _align(true_distribution, synthetic_distribution)
    return float(np.sqrt(0.5 * np.sum((np.sqrt(p) - np.sqrt(q)) ** 2)))


def kolmogorov_smirnov_statistic(true_distribution: Sequence[float],
                                 synthetic_distribution: Sequence[float]) -> float:
    """KS statistic (E5): maximum absolute difference of the two CDFs."""
    p, q = _align(true_distribution, synthetic_distribution)
    return float(np.max(np.abs(np.cumsum(p) - np.cumsum(q))))


def total_variation_distance(true_distribution: Sequence[float],
                             synthetic_distribution: Sequence[float]) -> float:
    """Total variation distance, a convenient extra metric exposed for users."""
    p, q = _align(true_distribution, synthetic_distribution)
    return float(0.5 * np.sum(np.abs(p - q)))


__all__ = [
    "kl_divergence",
    "hellinger_distance",
    "kolmogorov_smirnov_statistic",
    "total_variation_distance",
]
