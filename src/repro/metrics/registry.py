"""Registry mapping the paper's metric codes (E1-E11) to implementations.

Scalar metrics take ``(true_value, synthetic_value)``; vector metrics take two
sequences; partition metrics take two partitions.  The registry records which
signature each metric has so the benchmark runner can dispatch without
special-casing individual queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.community.metrics import (
    adjusted_mutual_information,
    adjusted_rand_index,
    average_f1_score,
    normalized_mutual_information,
)
from repro.metrics.distribution import (
    hellinger_distance,
    kl_divergence,
    kolmogorov_smirnov_statistic,
)
from repro.metrics.errors import (
    mean_absolute_error,
    mean_relative_error,
    mean_squared_error,
    relative_error,
)


@dataclass(frozen=True)
class MetricInfo:
    """One error metric: its paper code, kind of inputs, and direction."""

    name: str
    code: str
    kind: str  # "scalar", "vector", "distribution", or "partition"
    higher_is_better: bool
    func: Callable

    def __call__(self, true_value, synthetic_value) -> float:
        return float(self.func(true_value, synthetic_value))


METRIC_REGISTRY: Dict[str, MetricInfo] = {
    "re": MetricInfo("re", "E1", "scalar", False, relative_error),
    "mre": MetricInfo("mre", "E2", "vector", False, mean_relative_error),
    "kl": MetricInfo("kl", "E3", "distribution", False, kl_divergence),
    "hellinger": MetricInfo("hellinger", "E4", "distribution", False, hellinger_distance),
    "ks": MetricInfo("ks", "E5", "distribution", False, kolmogorov_smirnov_statistic),
    "avg_f1": MetricInfo("avg_f1", "E6", "partition", True, average_f1_score),
    "mae": MetricInfo("mae", "E7", "vector", False, mean_absolute_error),
    "mse": MetricInfo("mse", "E8", "vector", False, mean_squared_error),
    "ari": MetricInfo("ari", "E9", "partition", True, adjusted_rand_index),
    "ami": MetricInfo("ami", "E10", "partition", True, adjusted_mutual_information),
    "nmi": MetricInfo("nmi", "E11", "partition", True, normalized_mutual_information),
}


def list_metrics() -> List[str]:
    """All registered metric names."""
    return sorted(METRIC_REGISTRY)


def get_metric(name: str) -> MetricInfo:
    """Look up a metric by name (e.g. ``"re"``) or paper code (e.g. ``"E1"``)."""
    key = name.lower()
    if key in METRIC_REGISTRY:
        return METRIC_REGISTRY[key]
    for metric in METRIC_REGISTRY.values():
        if metric.code.lower() == key:
            return metric
    available = ", ".join(sorted(METRIC_REGISTRY))
    raise KeyError(f"unknown metric {name!r}; available: {available}")


__all__ = ["MetricInfo", "METRIC_REGISTRY", "get_metric", "list_metrics"]
