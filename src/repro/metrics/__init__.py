"""Error metrics (the U2 element, paper Table IV, E1-E11)."""

from repro.metrics.errors import (
    mean_absolute_error,
    mean_relative_error,
    mean_squared_error,
    relative_error,
)
from repro.metrics.distribution import (
    hellinger_distance,
    kl_divergence,
    kolmogorov_smirnov_statistic,
)
from repro.metrics.registry import METRIC_REGISTRY, get_metric, list_metrics

__all__ = [
    "relative_error",
    "mean_relative_error",
    "mean_absolute_error",
    "mean_squared_error",
    "kl_divergence",
    "hellinger_distance",
    "kolmogorov_smirnov_statistic",
    "METRIC_REGISTRY",
    "get_metric",
    "list_metrics",
]
