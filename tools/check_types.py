#!/usr/bin/env python3
"""Run ``mypy --strict`` on the typed core and diff against the baseline.

The typed surface is ``repro.core`` + ``repro.dp`` + ``repro.registry``
(configured in ``pyproject.toml`` under ``[tool.mypy]``).  Rather than requiring a clean
tree on day one, this wrapper enforces *no new errors*:

* every error mypy reports is normalised to ``path:line: code message``;
* errors present in ``tools/mypy_baseline.txt`` are tolerated (and reported
  as fixed once they disappear, so the baseline can be shrunk);
* any error *not* in the baseline fails the check.

Refresh the baseline with ``python tools/check_types.py --update`` after
deliberately accepting a new debt item (justify it in the PR).

The baseline ships with a ``# seeded-unverified`` sentinel on its first
line: it was committed from an environment without mypy installed, so the
first CI run with mypy available rewrites it (``--update``) and removes the
sentinel.  While the sentinel is present — or when mypy is not importable —
the check reports what it would do and exits 0 instead of failing builds on
a tool it cannot run.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "tools" / "mypy_baseline.txt"
SENTINEL = "# seeded-unverified"
#: src/repro/core covers the whole execution layer, including the
#: shared-memory dataset plane (core/shm.py) added alongside the zero-copy
#: transport — new core modules are picked up here without listing them.
TARGETS = ("src/repro/core", "src/repro/dp", "src/repro/registry")

#: Normalise ``path:line:col: error: message  [code]`` → ``path:line: [code] message``
#: (column numbers churn with unrelated edits; keep the baseline stable).
_ERROR_RE = re.compile(
    r"^(?P<path>[^:]+):(?P<line>\d+)(?::\d+)?: error: (?P<message>.*?)(?:\s+\[(?P<code>[\w-]+)\])?$"
)


def run_mypy() -> "tuple[list[str], bool]":
    """Return (normalised error lines, mypy_available)."""
    try:
        import mypy  # noqa: F401
    except ImportError:
        return [], False
    command = [sys.executable, "-m", "mypy", "--strict", *TARGETS]
    proc = subprocess.run(command, cwd=REPO_ROOT, capture_output=True, text=True)
    errors = []
    for line in proc.stdout.splitlines():
        match = _ERROR_RE.match(line.strip())
        if match:
            code = match.group("code") or "misc"
            errors.append(
                f"{match.group('path')}:{match.group('line')}: [{code}] "
                f"{match.group('message')}"
            )
    return sorted(set(errors)), True


def load_baseline() -> "tuple[set[str], bool]":
    """Return (baselined error lines, seeded_unverified)."""
    if not BASELINE.exists():
        return set(), True
    lines = BASELINE.read_text(encoding="utf-8").splitlines()
    seeded = bool(lines) and lines[0].strip() == SENTINEL
    entries = {line.strip() for line in lines
               if line.strip() and not line.startswith("#")}
    return entries, seeded


def write_baseline(errors: "list[str]") -> None:
    header = [
        "# mypy --strict baseline for src/repro/core + src/repro/dp.",
        "# One normalised error per line; tools/check_types.py fails on any",
        "# error not listed here.  Shrink freely, grow only with a PR reason.",
    ]
    BASELINE.write_text("\n".join(header + errors) + "\n", encoding="utf-8")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current mypy output")
    args = parser.parse_args()

    errors, available = run_mypy()
    if not available:
        print("check_types: mypy is not installed in this environment; "
              "skipping (the CI lint job runs it)")
        return 0

    if args.update:
        write_baseline(errors)
        print(f"check_types: baseline updated with {len(errors)} entries")
        return 0

    baseline, seeded = load_baseline()
    if seeded:
        # First run in an environment that actually has mypy: report, refresh,
        # and pass — enforcement starts once the refreshed baseline lands.
        write_baseline(errors)
        print(f"check_types: baseline was seeded unverified; rewrote it with "
              f"{len(errors)} current entries — commit tools/mypy_baseline.txt "
              "to start enforcing")
        return 0

    new = [error for error in errors if error not in baseline]
    fixed = sorted(baseline - set(errors))
    if fixed:
        print(f"check_types: {len(fixed)} baselined errors no longer occur; "
              "consider shrinking the baseline:")
        for line in fixed:
            print(f"  - {line}")
    if new:
        print(f"check_types: {len(new)} new mypy errors (not in baseline):")
        for line in new:
            print(f"  + {line}")
        return 1
    print(f"check_types: clean ({len(errors)} known, 0 new)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
