"""Figure 7 — comparison of DER against TmF and PrivGraph.

The paper's Appendix C compares the DER baseline with TmF and PrivGraph on the
Facebook and Wiki-Vote datasets using the average clustering coefficient and
the diameter, across the six benchmark budgets.  Expected shape: DER generally
exhibits higher (worse) relative error than TmF and PrivGraph on both queries.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.registry import get_algorithm
from repro.core.spec import PGB_EPSILONS
from repro.graphs.datasets import load_dataset
from repro.queries.registry import get_query

FIGURE7_ALGORITHMS = ("tmf", "privgraph", "der")
FIGURE7_DATASETS = ("facebook", "wiki-vote")
FIGURE7_QUERIES = ("average_clustering", "diameter")


def test_fig7_der_comparison(benchmark, bench_scale, bench_seed):
    """Compute the Figure 7 error curves for TmF, PrivGraph and DER."""
    graphs = {name: load_dataset(name, scale=bench_scale, seed=bench_seed)
              for name in FIGURE7_DATASETS}
    queries = {name: get_query(name) for name in FIGURE7_QUERIES}

    def run():
        curves = {}
        for dataset, graph in graphs.items():
            truth = {name: query.evaluate(graph) for name, query in queries.items()}
            for algorithm_name in FIGURE7_ALGORITHMS:
                for epsilon in PGB_EPSILONS:
                    synthetic = get_algorithm(algorithm_name).generate_graph(
                        graph, epsilon, rng=bench_seed
                    )
                    for query_name, query in queries.items():
                        from repro.metrics.errors import relative_error

                        value = query.evaluate(synthetic)
                        curves[(dataset, query_name, algorithm_name, epsilon)] = relative_error(
                            truth[query_name], value
                        )
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== Figure 7: DER vs TmF vs PrivGraph (relative error) ===")
    for dataset in FIGURE7_DATASETS:
        for query_name in FIGURE7_QUERIES:
            print(f"\n--- dataset={dataset}  query={query_name} ---")
            header = f"{'algorithm':<12}" + "".join(
                f"{'eps=' + format(eps, 'g'):>12}" for eps in PGB_EPSILONS
            )
            print(header)
            for algorithm_name in FIGURE7_ALGORITHMS:
                row = f"{algorithm_name:<12}"
                for epsilon in PGB_EPSILONS:
                    row += f"{curves[(dataset, query_name, algorithm_name, epsilon)]:>12.4f}"
                print(row)

    # Shape: averaged over datasets, queries and budgets, DER should not beat
    # both stronger algorithms (it is the weakest baseline in the paper).
    def mean_error(algorithm_name: str) -> float:
        return float(np.mean([
            curves[(dataset, query_name, algorithm_name, epsilon)]
            for dataset in FIGURE7_DATASETS
            for query_name in FIGURE7_QUERIES
            for epsilon in PGB_EPSILONS
        ]))

    assert mean_error("der") + 1e-9 >= min(mean_error("tmf"), mean_error("privgraph")) * 0.5
