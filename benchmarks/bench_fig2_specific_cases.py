"""Figure 2 — end-to-end comparison on specific cases.

The paper's Figure 2 plots, for five queries (triangle count, degree
distribution, diameter, community detection, eigenvector centrality) and four
datasets (Facebook, CA-HepPh, Gnutella, ER), one error curve per algorithm as
a function of ε.  This bench regenerates the same series as text tables: one
block per (query, dataset), rows = algorithms, columns = ε.

Expected shape: errors generally decrease as ε grows; DP-dK fluctuates heavily
on triangle counting at small ε; TmF has very low triangle error on the ER
graph; DP-dK attains the lowest degree-distribution KL at large ε.
"""

from __future__ import annotations

from repro.core.report import render_error_table

FIGURE2_QUERIES = (
    "triangle_count",
    "degree_distribution",
    "diameter",
    "community_detection",
    "eigenvector_centrality",
)
FIGURE2_DATASETS = ("facebook", "ca-hepph", "gnutella", "er")


def test_fig2_specific_case_curves(benchmark, full_grid_results):
    """Extract and print the Figure 2 error curves from the full grid."""

    def extract():
        tables = {}
        for query in FIGURE2_QUERIES:
            for dataset in FIGURE2_DATASETS:
                tables[(query, dataset)] = render_error_table(full_grid_results, query, dataset)
        return tables

    tables = benchmark.pedantic(extract, rounds=1, iterations=1)
    assert len(tables) == len(FIGURE2_QUERIES) * len(FIGURE2_DATASETS)

    print("\n=== Figure 2: per-query error curves (rows: algorithms, columns: epsilon) ===")
    for (query, dataset), table in tables.items():
        print(f"\n--- query={query}  dataset={dataset} ---")
        print(table)

    # Shape check: averaged over the Figure 2 datasets, every algorithm's mean
    # error at eps=10 should not exceed its mean error at eps=0.1 by much
    # (utility does not systematically degrade with more budget).
    results = full_grid_results
    for algorithm in results.algorithms():
        low, high = [], []
        for query in FIGURE2_QUERIES:
            for dataset in FIGURE2_DATASETS:
                low.extend(c.error for c in results.filter(algorithm, dataset, 0.1, query))
                high.extend(c.error for c in results.filter(algorithm, dataset, 10.0, query))
        if low and high:
            assert sum(high) / len(high) <= sum(low) / len(low) * 2.0 + 1.0
