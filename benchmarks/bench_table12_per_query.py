"""Table XII — per-query best counts over all (dataset, ε) combinations.

Each entry counts how often an algorithm achieved the lowest error for one
query across the 8 datasets × 6 privacy budgets (Definition 6).  The paper's
shape: TmF dominates the exact counting queries (|V|, |E|, average degree),
DP-dK leads on the degree distribution and ACC, PrivHRG leads on community
detection, DGG on path-related queries.
"""

from __future__ import annotations

from repro.core.aggregate import best_count_by_query
from repro.core.report import render_per_query_table


def test_table12_per_query_best_counts(benchmark, full_grid_results):
    """Aggregate the full grid into the Table XII layout and print it."""

    def aggregate():
        return best_count_by_query(full_grid_results)

    counts = benchmark.pedantic(aggregate, rounds=1, iterations=1)

    results = full_grid_results
    cells_per_query = len(results.datasets()) * len(results.epsilons())
    for query in results.queries():
        total = sum(counts[(query, algorithm)] for algorithm in results.algorithms())
        assert total >= cells_per_query  # every (dataset, epsilon) cell has a winner

    print("\n=== Table XII: per-query best counts ===")
    print(render_per_query_table(results))
