"""Table X — empirical memory consumption (MiB) per algorithm and dataset.

Peak traced allocation of one generation run per (algorithm, dataset) at
ε = 1.  Expected shape: PrivGraph is the most memory-efficient (it works with
per-community structures), while the algorithms that materialise degree/joint
-degree tables or dense candidate sets (DP-dK, DGG) consume more.
"""

from __future__ import annotations

from repro.algorithms.registry import PGB_ALGORITHM_NAMES
from repro.core.profiling import profile_algorithms, profiles_as_tables
from repro.core.report import render_resource_table
from repro.graphs.datasets import PGB_DATASET_NAMES


def test_table10_memory_consumption(benchmark, bench_scale, bench_seed):
    """Profile every (algorithm, dataset) pair and print the memory table."""

    def profile():
        return profile_algorithms(
            PGB_ALGORITHM_NAMES, PGB_DATASET_NAMES, epsilon=1.0, scale=bench_scale, seed=bench_seed
        )

    profiles = benchmark.pedantic(profile, rounds=1, iterations=1)
    tables = profiles_as_tables(profiles)

    print("\n=== Table X: peak traced memory in MiB (one generation run, eps=1) ===")
    print(render_resource_table(tables["memory"], value_format="{:.2f}"))

    assert all(profile.peak_mib >= 0.0 for profile in profiles)
