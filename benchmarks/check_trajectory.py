"""Gate a fresh BENCH_speed.json against the committed trajectory.

The nightly scale workflow re-runs ``bench_speed.py --scale`` and then calls
this script with the fresh output and the committed ``BENCH_speed.json``.
It fails (exit 1) when

* a layer present in the committed trajectory is missing from the fresh run;
* a layer's speedup fell below ``--min-speedup-ratio`` × the committed
  speedup (speedups are before/after ratios measured on the same machine,
  so they are robust to runner hardware differences, unlike raw seconds);
* a layer's or scale engine's ``after_peak_mb`` exceeds ``--max-peak-ratio``
  × the committed peak plus ``--peak-slack-mb`` (peaks are allocation
  volumes, also machine-independent).

A ``workflow_dispatch`` run may use a non-default ``--scale-nodes``; the
sparse engines' peaks are linear in n + m by design (that is exactly what
``bench_speed`` budgets), so the scale-engine ceilings are rescaled by the
fresh/committed (nodes + edges) ratio instead of demanding equal sizes.
The committed 500k-node claim itself is still gated nightly, because the
scheduled run always uses the default node count.

Usage::

    python benchmarks/check_trajectory.py BENCH_fresh.json BENCH_speed.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCALE_ENGINES = ("louvain", "privgraph", "der", "privskg")


def check_trajectory(fresh: dict, committed: dict, min_speedup_ratio: float,
                     max_peak_ratio: float, peak_slack_mb: float) -> list[str]:
    """Return the list of regressions of ``fresh`` against ``committed``."""
    failures: list[str] = []

    for name, reference in committed.get("layers", {}).items():
        layer = fresh.get("layers", {}).get(name)
        if layer is None:
            failures.append(f"layer {name!r} missing from the fresh run")
            continue
        floor = reference["speedup"] * min_speedup_ratio
        if layer["speedup"] < floor:
            failures.append(
                f"layer {name!r} speedup {layer['speedup']:.2f}x fell below "
                f"{floor:.2f}x ({min_speedup_ratio:.0%} of the committed "
                f"{reference['speedup']:.2f}x)"
            )
        ceiling = reference["after_peak_mb"] * max_peak_ratio + peak_slack_mb
        if layer["after_peak_mb"] > ceiling:
            failures.append(
                f"layer {name!r} peak {layer['after_peak_mb']:.1f} MB exceeds "
                f"{ceiling:.1f} MB (committed {reference['after_peak_mb']:.1f} MB)"
            )

    committed_scale = committed.get("scale")
    if committed_scale is not None:
        fresh_scale = fresh.get("scale")
        if fresh_scale is None:
            failures.append("scale section missing from the fresh run")
            return failures
        committed_size = committed_scale["nodes"] + committed_scale.get("edges", 0)
        fresh_size = fresh_scale["nodes"] + fresh_scale.get("edges", 0)
        size_ratio = fresh_size / committed_size if committed_size else 1.0
        if fresh_scale["nodes"] != committed_scale["nodes"]:
            print(
                f"note: scale run covers {fresh_scale['nodes']} nodes vs the "
                f"committed {committed_scale['nodes']}; peak ceilings rescaled "
                f"by {size_ratio:.2f}x (engine peaks are linear in n + m)"
            )
        for name in SCALE_ENGINES:
            reference = committed_scale.get(name)
            entry = fresh_scale.get(name)
            if reference is None:
                continue
            if entry is None:
                failures.append(f"scale engine {name!r} missing from the fresh run")
                continue
            ceiling = (reference["after_peak_mb"] * max_peak_ratio * size_ratio
                       + peak_slack_mb)
            if entry["after_peak_mb"] > ceiling:
                failures.append(
                    f"scale engine {name!r} peak {entry['after_peak_mb']:.1f} MB "
                    f"exceeds {ceiling:.1f} MB "
                    f"(committed {reference['after_peak_mb']:.1f} MB at the "
                    f"committed scale)"
                )
        # The payload-shipping byte reduction is a ratio of serialized sizes,
        # fully machine-independent, so it gets the same relative floor as
        # the layer speedups (a fresh run may skip the entry only when shm is
        # unavailable on the runner — but then the committed entry must have
        # been produced without shm too, so a committed entry is binding).
        reference = committed_scale.get("payload_shipping")
        if reference is not None:
            entry = fresh_scale.get("payload_shipping")
            if entry is None:
                failures.append("scale entry 'payload_shipping' missing from the fresh run")
            else:
                floor = reference["bytes_reduction"] * min_speedup_ratio
                if entry["bytes_reduction"] < floor:
                    failures.append(
                        f"scale payload_shipping byte reduction "
                        f"{entry['bytes_reduction']:.1f}x fell below {floor:.1f}x "
                        f"({min_speedup_ratio:.0%} of the committed "
                        f"{reference['bytes_reduction']:.1f}x)"
                    )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="BENCH_speed.json produced by this run")
    parser.add_argument("committed", help="committed BENCH_speed.json to gate against")
    parser.add_argument("--min-speedup-ratio", type=float, default=0.5,
                        help="fail when a layer speedup drops below this "
                             "fraction of the committed speedup (default 0.5)")
    parser.add_argument("--max-peak-ratio", type=float, default=1.5,
                        help="fail when a peak exceeds this multiple of the "
                             "committed peak (default 1.5)")
    parser.add_argument("--peak-slack-mb", type=float, default=32.0,
                        help="absolute slack added to every peak ceiling (default 32)")
    args = parser.parse_args(argv)

    fresh = json.loads(Path(args.fresh).read_text(encoding="utf-8"))
    committed = json.loads(Path(args.committed).read_text(encoding="utf-8"))
    failures = check_trajectory(
        fresh, committed,
        min_speedup_ratio=args.min_speedup_ratio,
        max_peak_ratio=args.max_peak_ratio,
        peak_slack_mb=args.peak_slack_mb,
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    checked = len(committed.get("layers", {}))
    if "scale" in committed:
        checked += len(SCALE_ENGINES)
        checked += 1 if "payload_shipping" in committed["scale"] else 0
    print(f"trajectory OK: {checked} entries within tolerance "
          f"(speedup ≥ {args.min_speedup_ratio:.0%} of committed, "
          f"peak ≤ {args.max_peak_ratio:.1f}× + {args.peak_slack_mb:.0f} MB)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
