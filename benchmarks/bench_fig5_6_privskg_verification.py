"""Figures 5 and 6 — verification of the PrivSKG re-implementation on CA-GrQc.

The paper verifies PrivSKG by comparing the degree distribution (Figure 5) and
the degree-vs-average-clustering profile (Figure 6) of its synthetic graphs to
the original graph on CA-GrQc.  This bench regenerates both series on the
CA-GrQc stand-in (averaged over a few generated graphs, as in the original).

Expected shape: both the original and synthetic degree distributions are
heavy-tailed (counts fall roughly as a power law); the synthetic clustering
profile sits well below the original's (the single-parameter Kronecker model
cannot reproduce the collaboration graph's clustering), as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.privskg import PrivSKG
from repro.graphs.datasets import load_dataset
from repro.graphs.properties import degree_histogram, local_clustering_coefficients


def _clustering_by_degree(graph) -> dict:
    degrees = graph.degrees()
    clustering = local_clustering_coefficients(graph)
    profile = {}
    for degree in np.unique(degrees):
        if degree < 1:
            continue
        mask = degrees == degree
        profile[int(degree)] = float(clustering[mask].mean())
    return profile


def test_fig5_6_privskg_verification(benchmark, bench_scale, bench_seed):
    """Compare degree distribution and clustering profile of PrivSKG output."""
    graph = load_dataset("ca-grqc", scale=bench_scale * 2, seed=bench_seed)
    epsilon = 0.2  # the budget the original PrivSKG paper evaluates
    num_samples = 3

    def run():
        histograms = []
        profiles = []
        for sample in range(num_samples):
            synthetic = PrivSKG(delta=0.01, grid_points=8).generate_graph(
                graph, epsilon, rng=bench_seed + sample
            )
            histograms.append(degree_histogram(synthetic))
            profiles.append(_clustering_by_degree(synthetic))
        return histograms, profiles

    histograms, profiles = benchmark.pedantic(run, rounds=1, iterations=1)

    true_histogram = degree_histogram(graph)
    length = max(len(true_histogram), max(len(h) for h in histograms))
    averaged = np.zeros(length)
    for histogram in histograms:
        averaged[: len(histogram)] += histogram
    averaged /= num_samples

    print("\n=== Figure 5: degree distribution, original vs average of generated graphs ===")
    print(f"{'degree':<8}{'original':>12}{'generated':>12}")
    for degree in range(0, length, max(length // 15, 1)):
        original = true_histogram[degree] if degree < len(true_histogram) else 0
        print(f"{degree:<8}{original:>12.1f}{averaged[degree]:>12.1f}")

    true_profile = _clustering_by_degree(graph)
    print("\n=== Figure 6: degree vs average clustering, original vs generated ===")
    print(f"{'degree':<8}{'original':>12}{'generated':>12}")
    merged_degrees = sorted(set(true_profile) | set().union(*[set(p) for p in profiles]))
    for degree in merged_degrees[:15]:
        generated = np.mean([profile.get(degree, 0.0) for profile in profiles])
        print(f"{degree:<8}{true_profile.get(degree, 0.0):>12.4f}{generated:>12.4f}")

    # Shape checks: both distributions are supported on comparable ranges and
    # the synthetic clustering does not exceed the original's mean by much.
    assert averaged.sum() > 0
    true_mean_cc = np.mean(list(true_profile.values())) if true_profile else 0.0
    generated_mean_cc = np.mean(
        [np.mean(list(profile.values())) if profile else 0.0 for profile in profiles]
    )
    assert generated_mean_cc <= true_mean_cc + 0.2
