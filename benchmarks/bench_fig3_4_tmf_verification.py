"""Figures 3 and 4 — verification of the TmF re-implementation on Facebook.

The paper verifies TmF by comparing its degree-distribution KL divergence
(Figure 3) and community-detection NMI (Figure 4) on the Facebook dataset
against the curves published with PrivGraph.  This bench regenerates both
series on the Facebook stand-in across the six benchmark budgets.

Expected shape: the degree-distribution KL decreases (improves) as ε grows;
the community-detection NMI increases with ε and is low (< 0.5) at small ε.
"""

from __future__ import annotations

from repro.algorithms.tmf import TmF
from repro.core.spec import PGB_EPSILONS
from repro.graphs.datasets import load_dataset
from repro.queries.registry import get_query


def test_fig3_4_tmf_verification(benchmark, bench_scale, bench_seed):
    """Compute TmF's degree-distribution KL and community NMI across budgets."""
    graph = load_dataset("facebook", scale=bench_scale * 2, seed=bench_seed)
    degree_query = get_query("degree_distribution")
    community_query = get_query("community_detection")

    def run():
        series = {"kl": {}, "nmi": {}}
        for epsilon in PGB_EPSILONS:
            synthetic = TmF().generate_graph(graph, epsilon, rng=bench_seed)
            series["kl"][epsilon] = degree_query.error(graph, synthetic)
            series["nmi"][epsilon] = community_query.similarity(graph, synthetic)
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== Figure 3: TmF degree-distribution KL divergence on Facebook ===")
    for epsilon in PGB_EPSILONS:
        print(f"  eps={epsilon:<5g} KL={series['kl'][epsilon]:.4f}")
    print("\n=== Figure 4: TmF community-detection NMI on Facebook ===")
    for epsilon in PGB_EPSILONS:
        print(f"  eps={epsilon:<5g} NMI={series['nmi'][epsilon]:.4f}")

    # Shape: the KL at the largest budget should not exceed the KL at the smallest.
    assert series["kl"][10.0] <= series["kl"][0.1] + 0.5
    # NMI values live in [0, 1].
    assert all(0.0 <= value <= 1.0 for value in series["nmi"].values())
