"""Shared configuration for the benchmark harness.

Every paper table/figure has a ``bench_*.py`` module in this directory.  The
heavy experiment grids are executed once per session (session-scoped fixtures)
and the individual benches time their own piece and print the corresponding
table, so running

    pytest benchmarks/ --benchmark-only -s

regenerates the paper's reporting artefacts end to end.

The scale of the dataset stand-ins is controlled by the ``PGB_BENCH_SCALE``
environment variable (default 0.02, i.e. graphs of roughly 50-500 nodes) and
the number of repetitions per cell by ``PGB_BENCH_REPETITIONS`` (default 1).
Raising the scale toward 1.0 reproduces the paper's sizes at the cost of a
much longer run.
"""

from __future__ import annotations

import os

import pytest

from repro.core.runner import run_benchmark
from repro.core.spec import BenchmarkSpec

BENCH_SCALE = float(os.environ.get("PGB_BENCH_SCALE", "0.02"))
BENCH_REPETITIONS = int(os.environ.get("PGB_BENCH_REPETITIONS", "1"))
BENCH_SEED = int(os.environ.get("PGB_BENCH_SEED", "2024"))


@pytest.fixture(scope="session")
def full_grid_results():
    """The full (M × G × P × U) grid at bench scale — backs Tables VII/XII and Figure 2."""
    spec = BenchmarkSpec.paper_instantiation(
        scale=BENCH_SCALE, repetitions=BENCH_REPETITIONS, seed=BENCH_SEED
    )
    return run_benchmark(spec)


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED
