"""Table XI — verification of the DP-dK re-implementation on a CA-GrQc-like graph.

The paper's appendix verifies the re-implemented DP-dK by comparing a set of
queries (|V|, |E|, average degree, assortativity, ACC, diameter, triangles,
transitivity, modularity) at ε ∈ {20, 2, 0.2} against the original
publication's numbers on CA-GrQc.  This bench reproduces the protocol on the
CA-GrQc stand-in and prints ground truth vs. the DP-dK synthetic value per ε.

Expected shape: counting and degree statistics track the ground truth closely
at ε = 20 and drift as ε shrinks; clustering-related quantities are strongly
underestimated at every ε (as in the original paper, where ACC drops from 0.53
to < 0.02); the diameter is distorted by the Havel–Hakimi construction.
"""

from __future__ import annotations

from repro.algorithms.dp_dk import DPdK
from repro.graphs.datasets import load_dataset
from repro.queries.registry import get_query

VERIFICATION_QUERIES = (
    "num_nodes",
    "num_edges",
    "average_degree",
    "assortativity",
    "average_clustering",
    "diameter",
    "triangle_count",
    "global_clustering",
    "modularity",
)
VERIFICATION_EPSILONS = (20.0, 2.0, 0.2)


def test_table11_dpdk_verification(benchmark, bench_scale, bench_seed):
    """Run DP-dK on the CA-GrQc stand-in for the three verification budgets."""
    graph = load_dataset("ca-grqc", scale=bench_scale * 2, seed=bench_seed)
    queries = [get_query(name) for name in VERIFICATION_QUERIES]
    truth = {query.name: query.evaluate(graph) for query in queries}

    def run():
        values = {}
        for epsilon in VERIFICATION_EPSILONS:
            synthetic = DPdK(order=2, delta=0.01).generate_graph(graph, epsilon, rng=bench_seed)
            values[epsilon] = {query.name: query.evaluate(synthetic) for query in queries}
        return values

    values = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== Table XI: DP-dK verification on the CA-GrQc stand-in ===")
    header = f"{'query':<22}{'ground truth':>14}" + "".join(
        f"{'eps=' + format(eps, 'g'):>14}" for eps in VERIFICATION_EPSILONS
    )
    print(header)
    for query in queries:
        row = f"{query.name:<22}{_fmt(truth[query.name]):>14}"
        for epsilon in VERIFICATION_EPSILONS:
            row += f"{_fmt(values[epsilon][query.name]):>14}"
        print(row)

    # Shape: the synthetic graph is non-trivial at ε = 20 and the edge-count
    # error does not improve as the budget shrinks (DP-dK degrades at small ε,
    # exactly as in the original paper's verification table).
    assert values[20.0]["num_edges"] > 0
    error_at_20 = abs(values[20.0]["num_edges"] - truth["num_edges"]) / truth["num_edges"]
    error_at_02 = abs(values[0.2]["num_edges"] - truth["num_edges"]) / truth["num_edges"]
    assert error_at_20 <= error_at_02 + 0.25


def _fmt(value: float) -> str:
    return f"{value:.4g}"
