"""Speed trajectory of the array-native pipeline: before vs after.

Measures seven layers on a Chung–Lu graph (10k nodes by default,
power-law-ish expected degrees):

* ``graph_core``     — degree / CSR / dense-adjacency / subgraph conversions
                       through the memoized array layer vs the scalar
                       reference loops;
* ``tmf_generation`` — vectorized TmF (mask keep + bulk rejection fill) vs
                       the retained scalar path (bit-identical output);
* ``query_evaluation`` — the full 15-query evaluation through one memoized
                       :class:`EvaluationContext` vs the seed behaviour
                       (every query re-deriving its own views, scalar
                       property loops);
* ``louvain``        — the flat-array CSR Louvain engine vs the retained
                       dict engine (median of 3 runs each; modularity of
                       both partitions is recorded so the speedup is tied to
                       quality parity);
* ``privgraph_generation`` — PrivGraph end to end: the sparse engine
                       (blocked Gumbel-max scores, streamed pair noise, CSR
                       Louvain) vs the dense reference on the dict engine;
* ``der_generation`` — DER with the frontier exploration + grouped one-pass
                       leaf reconstruction vs the dense re-counting
                       exploration with the per-leaf rejection loop;
* ``privskg_generation`` — PrivSKG with the blocked Kronecker sampler vs
                       the retained scalar ball-dropping loop (bit-identical
                       output);
* ``privhrg_generation`` — PrivHRG with the flat-array dendrogram MCMC vs
                       the retained object-tree reference (bit-identical;
                       measured on a reduced Chung–Lu input because the MCMC
                       fit dominates at full size);
* ``dp_dk_generation`` — DP-dK with the encoded-pair array 2K builder vs the
                       retained scalar dict path (bit-identical; same
                       reduced input as PrivHRG).

Every layer also records ``after_peak_mb``: the tracemalloc peak of the
optimized path (measured in a separate run so instrumentation does not skew
the timings).  ``--scale`` additionally runs every sparse engine — CSR
Louvain, PrivGraph, DER, PrivSKG — on a 500k-node Chung–Lu graph, records
each engine's seconds and peak under ``"scale"``, and **asserts a per-layer
peak-memory budget** (linear in n + m) so a dense-path regression fails
loudly instead of silently OOM-ing the runner.  The scale section also
carries ``payload_shipping``: the bytes (and seconds) of shipping the
500k-node dataset to a worker as a full pickle vs as a shared-memory
segment handle (``repro.core.shm``); the run fails when the byte reduction
drops below 5× — the floor the shm plane exists to guarantee.

Results are written to ``BENCH_speed.json`` so future PRs can track the
trajectory; re-run with ``--quick`` for the CI smoke (a smaller graph, same
protocol).  ``--min-combined-speedup`` gates the TmF + 15-query speedup and
``--min-louvain-speedup`` gates the Louvain layer, so regressions fail CI;
``benchmarks/check_trajectory.py`` compares a fresh run against the
committed trajectory (the nightly scale gate).

Usage::

    python benchmarks/bench_speed.py            # full (10k nodes)
    python benchmarks/bench_speed.py --scale    # + 500k-node engine entries
    python benchmarks/bench_speed.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import pickle
import statistics
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.algorithms.der import DER
from repro.algorithms.dp_dk import DPdK
from repro.algorithms.privgraph import PrivGraph
from repro.algorithms.privhrg import PrivHRG
from repro.algorithms.privskg import PrivSKG
from repro.algorithms.tmf import TmF
from repro.core import shm
from repro.community.louvain import louvain_communities
from repro.community.partition import modularity
from repro.generators.chung_lu import chung_lu_graph
from repro.graphs import reference
from repro.graphs.graph import Graph
from repro.queries.context import EvaluationContext
from repro.queries.registry import make_default_queries

EPSILON = 1.0
SEED = 2024
SCALE_NODES = 500_000

#: Input size for the PrivHRG / DP-dK layers: their retained dense
#: references (object-tree MCMC, per-edge dict rewiring) are too slow at the
#: main benchmark size, and the engines' trajectory is just as visible here.
HRG_DK_NODES = 1_500

#: Minimum pickle-bytes / handle-bytes ratio of the scale payload-shipping
#: entry — the contract of the shared-memory dataset plane.
MIN_PAYLOAD_BYTES_REDUCTION = 5.0

#: Peak-memory budgets for the ``--scale`` engine runs, as MiB per million
#: (nodes + edges).  Linear in the graph size by construction, so any
#: accidental re-introduction of an O(n²) dense matrix / O(n·k) score matrix
#: blows the budget immediately (a dense 500k² bitmap alone is ~31 000 MiB).
#: PrivSKG's budget is larger because its smooth-sensitivity stage counts
#: triangles through a sparse A² ∘ A product whose fill-in scales with the
#: degree second moment, not with n + m.
SCALE_PEAK_BUDGET_MB_PER_MILLION = {
    "louvain": 400.0,
    "privgraph": 400.0,
    "der": 400.0,
    "privskg": 1600.0,
}
SCALE_PEAK_BUDGET_BASE_MB = 64.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _timed_median(fn, repeats: int = 3):
    """Median wall time of ``repeats`` runs plus the last run's result."""
    times = []
    result = None
    for _ in range(repeats):
        seconds, result = _timed(fn)
        times.append(seconds)
    return statistics.median(times), result


def _peak_mb(fn) -> float:
    """tracemalloc peak of one run of ``fn``, in MiB (separate from timing)."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 2**20


def _layer(before_seconds: float, after_seconds: float, after_peak_mb: float,
           **extra) -> dict:
    return {
        "before_seconds": before_seconds,
        "after_seconds": after_seconds,
        "speedup": before_seconds / after_seconds if after_seconds > 0 else float("inf"),
        "after_peak_mb": after_peak_mb,
        **extra,
    }


def build_input_graph(nodes: int) -> Graph:
    """Deterministic Chung–Lu input with a mildly heavy-tailed degree target."""
    weights = 8.0 * (np.arange(1, nodes + 1) / nodes) ** (-0.3)
    return chung_lu_graph(weights, rng=SEED)


def bench_graph_core(graph: Graph) -> dict:
    arr = np.asarray(graph.edge_array())
    n = graph.num_nodes
    sample = np.linspace(0, n - 1, n // 2).astype(np.int64).tolist()
    dense_cap = n <= 4000  # the scalar dense fill is O(n² + m); keep it honest but bounded

    def before():
        scalar = reference.scalar_build_graph(arr.tolist(), n)
        reference.scalar_degrees(scalar)
        reference.scalar_to_sparse_adjacency(scalar)
        if dense_cap:
            reference.scalar_to_adjacency_matrix(scalar)
        reference.scalar_subgraph(scalar, sample)

    def after():
        bulk = Graph.from_edge_array(arr, n)
        bulk.degrees()
        bulk.to_sparse_adjacency()
        if dense_cap:
            bulk.to_adjacency_matrix()
        bulk.subgraph(sample)

    before_s, _ = _timed(before)
    after_s, _ = _timed(after)
    return _layer(before_s, after_s, _peak_mb(after))


def bench_tmf(graph: Graph) -> tuple[dict, Graph]:
    before_s, scalar_graph = _timed(
        lambda: TmF(vectorized=False).generate_graph(graph, EPSILON, rng=SEED)
    )
    after_s, vector_graph = _timed(
        lambda: TmF().generate_graph(graph, EPSILON, rng=SEED)
    )
    assert vector_graph == scalar_graph, "vectorized TmF diverged from the scalar path"
    peak = _peak_mb(lambda: TmF().generate_graph(graph, EPSILON, rng=SEED))
    return _layer(before_s, after_s, peak), vector_graph


def bench_queries(synthetic: Graph) -> dict:
    queries = make_default_queries()

    def before():
        return reference.scalar_query_values(synthetic)

    def after():
        context = EvaluationContext(synthetic)
        return {query.name: query.evaluate_in(context) for query in queries}

    before_s, before_values = _timed(before)
    after_s, after_values = _timed(after)
    # Sanity: the two paths must agree on every deterministic scalar query.
    for name in ("num_edges", "triangle_count", "diameter", "global_clustering"):
        assert abs(float(before_values[name]) - float(after_values[name])) < 1e-9, name
    return _layer(before_s, after_s, _peak_mb(after))


def bench_louvain(graph: Graph) -> dict:
    """CSR engine vs the retained dict engine, plus quality parity numbers."""
    before_s, dict_partition = _timed_median(
        lambda: louvain_communities(graph, rng=SEED, method="dict")
    )
    after_s, csr_partition = _timed_median(
        lambda: louvain_communities(graph, rng=SEED, method="csr")
    )
    modularity_before = modularity(graph, dict_partition)
    modularity_after = modularity(graph, csr_partition)
    # Quality parity is part of the layer's contract: the speedup only counts
    # if the CSR engine lands within tolerance of the reference modularity.
    assert modularity_after >= modularity_before - 0.02, (
        f"CSR Louvain quality regressed: {modularity_after:.4f} vs "
        f"{modularity_before:.4f}"
    )
    return _layer(
        before_s, after_s,
        _peak_mb(lambda: louvain_communities(graph, rng=SEED, method="csr")),
        modularity_before=modularity_before,
        modularity_after=modularity_after,
        communities_before=dict_partition.num_communities,
        communities_after=csr_partition.num_communities,
    )


def bench_privgraph(graph: Graph) -> dict:
    """PrivGraph end to end: dense engine on dict Louvain vs the sparse engine.

    The before path stacks the two retained references (dict Louvain
    representation + dense perturbation), the after path the two current
    engines — the layer tracks the cumulative trajectory.  The dense and
    sparse perturbation engines are additionally asserted bit-identical on
    the same Louvain method.
    """
    sparse_graph = PrivGraph().generate_graph(graph, EPSILON, rng=SEED)
    dense_graph = PrivGraph(dense=True).generate_graph(graph, EPSILON, rng=SEED)
    assert sparse_graph == dense_graph, "sparse PrivGraph diverged from the dense reference"
    before_s, _ = _timed_median(
        lambda: PrivGraph(louvain_method="dict", dense=True).generate_graph(
            graph, EPSILON, rng=SEED
        )
    )
    after_s, _ = _timed_median(
        lambda: PrivGraph().generate_graph(graph, EPSILON, rng=SEED)
    )
    peak = _peak_mb(lambda: PrivGraph().generate_graph(graph, EPSILON, rng=SEED))
    return _layer(before_s, after_s, peak)


def bench_der(graph: Graph) -> dict:
    """DER: frontier exploration + grouped leaf fill vs the dense re-counting
    exploration + per-leaf rejection loop."""
    frontier_graph = DER().generate_graph(graph, EPSILON, rng=SEED)
    dense_graph = DER(dense=True).generate_graph(graph, EPSILON, rng=SEED)
    assert frontier_graph == dense_graph, "frontier DER diverged from the dense reference"
    before_s, _ = _timed_median(
        lambda: DER(vectorized=False, dense=True).generate_graph(graph, EPSILON, rng=SEED)
    )
    after_s, _ = _timed_median(lambda: DER().generate_graph(graph, EPSILON, rng=SEED))
    peak = _peak_mb(lambda: DER().generate_graph(graph, EPSILON, rng=SEED))
    return _layer(before_s, after_s, peak)


def bench_privskg(graph: Graph) -> dict:
    """PrivSKG: blocked Kronecker sampler vs the scalar ball-dropping loop."""
    blocked_graph = PrivSKG().generate_graph(graph, EPSILON, rng=SEED)
    dense_graph = PrivSKG(dense=True).generate_graph(graph, EPSILON, rng=SEED)
    assert blocked_graph == dense_graph, "blocked PrivSKG diverged from the scalar reference"
    before_s, _ = _timed_median(
        lambda: PrivSKG(dense=True).generate_graph(graph, EPSILON, rng=SEED)
    )
    after_s, _ = _timed_median(lambda: PrivSKG().generate_graph(graph, EPSILON, rng=SEED))
    peak = _peak_mb(lambda: PrivSKG().generate_graph(graph, EPSILON, rng=SEED))
    return _layer(before_s, after_s, peak)


def bench_privhrg(nodes: int) -> dict:
    """PrivHRG: flat-array dendrogram MCMC vs the object-tree reference."""
    reduced = build_input_graph(min(nodes, HRG_DK_NODES))
    before_s, dense_graph = _timed_median(
        lambda: PrivHRG(dense=True).generate_graph(reduced, EPSILON, rng=SEED)
    )
    after_s, array_graph = _timed_median(
        lambda: PrivHRG().generate_graph(reduced, EPSILON, rng=SEED)
    )
    assert array_graph == dense_graph, "array PrivHRG diverged from the dense reference"
    peak = _peak_mb(lambda: PrivHRG().generate_graph(reduced, EPSILON, rng=SEED))
    return _layer(before_s, after_s, peak, nodes=reduced.num_nodes)


def bench_dp_dk(nodes: int) -> dict:
    """DP-dK: encoded-pair array 2K builder vs the scalar dict path."""
    reduced = build_input_graph(min(nodes, HRG_DK_NODES))
    before_s, dense_graph = _timed_median(
        lambda: DPdK(dense=True).generate_graph(reduced, EPSILON, rng=SEED)
    )
    after_s, array_graph = _timed_median(
        lambda: DPdK().generate_graph(reduced, EPSILON, rng=SEED)
    )
    assert array_graph == dense_graph, "array DP-dK diverged from the dense reference"
    peak = _peak_mb(lambda: DPdK().generate_graph(reduced, EPSILON, rng=SEED))
    return _layer(before_s, after_s, peak, nodes=reduced.num_nodes)


def bench_payload_shipping(graph: Graph) -> tuple[dict, list[str]]:
    """Dataset transport at scale: full pickle vs shm segment handle.

    Measures what the parallel runner actually ships per worker cache miss —
    the pickled ``(graph, true values)`` payload before, the pickled
    :class:`~repro.core.shm.DatasetSegmentHandle` (publish + wire + attach)
    after — and gates the byte reduction the plane exists to deliver.
    """
    values = {
        "num_edges": float(graph.num_edges),
        "average_degree": 2.0 * graph.num_edges / graph.num_nodes,
    }
    payload = (graph, values)
    pickle_seconds, _ = _timed(
        lambda: pickle.loads(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    )
    pickle_bytes = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))

    key = ("bench-payload-shipping", "chung_lu")

    def ship() -> bytes:
        handle, _ = shm.publish_dataset(key, graph, values)
        wire = pickle.dumps(handle, protocol=pickle.HIGHEST_PROTOCOL)
        shm.attach_dataset(key, pickle.loads(wire))
        return wire

    try:
        shm_seconds, wire = _timed(ship)
    finally:
        shm.release_dataset(key)
    handle_bytes = len(wire)

    entry = {
        "pickle_seconds": pickle_seconds,
        "shm_seconds": shm_seconds,
        "pickle_bytes": pickle_bytes,
        "handle_bytes": handle_bytes,
        "bytes_reduction": pickle_bytes / handle_bytes,
        "transport_speedup": pickle_seconds / shm_seconds if shm_seconds > 0 else float("inf"),
    }
    violations: list[str] = []
    if entry["bytes_reduction"] < MIN_PAYLOAD_BYTES_REDUCTION:
        violations.append(
            f"scale [payload_shipping] byte reduction {entry['bytes_reduction']:.1f}x "
            f"fell below the required {MIN_PAYLOAD_BYTES_REDUCTION:.0f}x"
        )
    return entry, violations


def scale_peak_budget_mb(layer: str, nodes: int, edges: int) -> float:
    """Per-layer peak budget: linear in n + m, so quadratic paths fail loudly."""
    per_million = SCALE_PEAK_BUDGET_MB_PER_MILLION[layer]
    return SCALE_PEAK_BUDGET_BASE_MB + per_million * (nodes + edges) / 1e6


def bench_scale(nodes: int = SCALE_NODES) -> tuple[dict, list[str]]:
    """Scale-ceiling entries: every sparse engine on a ``nodes``-node graph.

    Returns the scale payload and a list of peak-budget violations (empty
    when all engines stay inside their sub-quadratic budgets).
    """
    graph = build_input_graph(nodes)
    n, m = graph.num_nodes, graph.num_edges
    payload: dict = {"nodes": n, "edges": m}
    violations: list[str] = []

    diagnostics: dict = {}
    seconds, partition = _timed(
        lambda: louvain_communities(graph, rng=SEED, diagnostics=diagnostics)
    )
    payload["louvain"] = {
        "seconds": seconds,
        "after_peak_mb": _peak_mb(lambda: louvain_communities(graph, rng=SEED)),
        "modularity": modularity(graph, partition),
        "communities": partition.num_communities,
        "levels": diagnostics.get("levels"),
        "sweeps": diagnostics.get("sweeps"),
    }

    engines = {
        "privgraph": lambda: PrivGraph().generate_graph(graph, EPSILON, rng=SEED),
        "der": lambda: DER().generate_graph(graph, EPSILON, rng=SEED),
        "privskg": lambda: PrivSKG().generate_graph(graph, EPSILON, rng=SEED),
    }
    for name, run in engines.items():
        print(f"  scale [{name}] …", flush=True)
        seconds, synthetic = _timed(run)
        payload[name] = {
            "seconds": seconds,
            "after_peak_mb": _peak_mb(run),
            "synthetic_edges": synthetic.num_edges,
        }

    for name in ("louvain", "privgraph", "der", "privskg"):
        budget = scale_peak_budget_mb(name, n, m)
        payload[name]["peak_budget_mb"] = budget
        peak = payload[name]["after_peak_mb"]
        if peak > budget:
            violations.append(
                f"scale [{name}] peak {peak:.1f} MB exceeds the "
                f"sub-quadratic budget {budget:.1f} MB"
            )

    if shm.shm_available():
        print("  scale [payload_shipping] …", flush=True)
        payload["payload_shipping"], shipping_violations = bench_payload_shipping(graph)
        violations.extend(shipping_violations)
    return payload, violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="array-layer speed trajectory")
    parser.add_argument("--nodes", type=int, default=10_000)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 2000 nodes, same protocol")
    parser.add_argument("--scale", action="store_true",
                        help="additionally record 500k-node entries for every sparse engine")
    parser.add_argument("--scale-nodes", type=int, default=SCALE_NODES)
    parser.add_argument("--output", default=str(Path(__file__).resolve().parent.parent / "BENCH_speed.json"))
    parser.add_argument("--min-combined-speedup", type=float, default=None,
                        help="exit non-zero when TmF + query speedup falls below this")
    parser.add_argument("--min-louvain-speedup", type=float, default=None,
                        help="exit non-zero when the Louvain layer speedup falls below this")
    args = parser.parse_args(argv)

    nodes = 2000 if args.quick else args.nodes
    graph = build_input_graph(nodes)
    print(f"input graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    layers = {}
    layers["graph_core"] = bench_graph_core(graph)
    tmf_layer, synthetic = bench_tmf(graph)
    layers["tmf_generation"] = tmf_layer
    layers["query_evaluation"] = bench_queries(synthetic)
    layers["louvain"] = bench_louvain(graph)
    layers["privgraph_generation"] = bench_privgraph(graph)
    layers["der_generation"] = bench_der(graph)
    layers["privskg_generation"] = bench_privskg(graph)
    layers["privhrg_generation"] = bench_privhrg(nodes)
    layers["dp_dk_generation"] = bench_dp_dk(nodes)

    combined_before = (layers["tmf_generation"]["before_seconds"]
                       + layers["query_evaluation"]["before_seconds"])
    combined_after = (layers["tmf_generation"]["after_seconds"]
                      + layers["query_evaluation"]["after_seconds"])
    combined = {
        "before_seconds": combined_before,
        "after_seconds": combined_after,
        "speedup": combined_before / combined_after if combined_after > 0 else float("inf"),
    }

    payload = {
        "benchmark": "bench_speed",
        "protocol_version": 4,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "quick": bool(args.quick),
        "epsilon": EPSILON,
        "seed": SEED,
        "layers": layers,
        "combined_tmf_plus_queries": combined,
    }
    scale_violations: list[str] = []
    if args.scale:
        print(f"running the {args.scale_nodes}-node scale scenario …")
        payload["scale"], scale_violations = bench_scale(args.scale_nodes)

    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print(f"{'layer':<22} {'before':>9} {'after':>9} {'speedup':>9} {'peak MB':>9}")
    for name, layer in layers.items():
        print(f"{name:<22} {layer['before_seconds']:>8.3f}s {layer['after_seconds']:>8.3f}s "
              f"{layer['speedup']:>8.1f}x {layer['after_peak_mb']:>8.1f}")
    print(f"{'combined':<22} {combined['before_seconds']:>8.3f}s "
          f"{combined['after_seconds']:>8.3f}s {combined['speedup']:>8.1f}x {'':>9}")
    if "scale" in payload:
        scale = payload["scale"]
        print(f"scale input: {scale['nodes']} nodes / {scale['edges']} edges")
        for name in ("louvain", "privgraph", "der", "privskg"):
            entry = scale[name]
            print(f"scale [{name:<9}] {entry['seconds']:>8.2f}s "
                  f"peak {entry['after_peak_mb']:>8.1f} MB "
                  f"(budget {entry['peak_budget_mb']:.0f} MB)")
        shipping = scale.get("payload_shipping")
        if shipping:
            print(f"scale [shipping ] pickle {shipping['pickle_bytes'] / 2**20:.1f} MB "
                  f"/ {shipping['pickle_seconds']:.2f}s vs handle "
                  f"{shipping['handle_bytes']} B / {shipping['shm_seconds']:.2f}s "
                  f"({shipping['bytes_reduction']:.0f}x fewer bytes)")
    print(f"wrote {args.output}")

    status = 0
    if args.min_combined_speedup is not None and combined["speedup"] < args.min_combined_speedup:
        print(f"FAIL: combined speedup {combined['speedup']:.1f}x "
              f"< required {args.min_combined_speedup:.1f}x", file=sys.stderr)
        status = 1
    if (args.min_louvain_speedup is not None
            and layers["louvain"]["speedup"] < args.min_louvain_speedup):
        print(f"FAIL: louvain speedup {layers['louvain']['speedup']:.1f}x "
              f"< required {args.min_louvain_speedup:.1f}x", file=sys.stderr)
        status = 1
    for violation in scale_violations:
        print(f"FAIL: {violation}", file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
