"""Speed trajectory of the array-native pipeline: before vs after.

Measures the three layers the vectorization PR touched, on a Chung–Lu graph
(10k nodes by default, power-law-ish expected degrees):

* ``graph_core``     — degree / CSR / dense-adjacency / subgraph conversions
                       through the memoized array layer vs the scalar
                       reference loops;
* ``tmf_generation`` — vectorized TmF (mask keep + bulk rejection fill) vs
                       the retained scalar path (bit-identical output);
* ``query_evaluation`` — the full 15-query evaluation through one memoized
                       :class:`EvaluationContext` vs the seed behaviour
                       (every query re-deriving its own views, scalar
                       property loops).

Results are written to ``BENCH_speed.json`` so future PRs can track the
trajectory; re-run with ``--quick`` for the CI smoke (a smaller graph, same
protocol).  The combined TmF + 15-query speedup is the acceptance number.

Usage::

    PYTHONPATH=src python benchmarks/bench_speed.py            # full (10k nodes)
    PYTHONPATH=src python benchmarks/bench_speed.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_speed.py --min-combined-speedup 5
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.algorithms.tmf import TmF
from repro.generators.chung_lu import chung_lu_graph
from repro.graphs import reference
from repro.graphs.graph import Graph
from repro.queries.context import EvaluationContext
from repro.queries.registry import make_default_queries

EPSILON = 1.0
SEED = 2024


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def build_input_graph(nodes: int) -> Graph:
    """Deterministic Chung–Lu input with a mildly heavy-tailed degree target."""
    weights = 8.0 * (np.arange(1, nodes + 1) / nodes) ** (-0.3)
    return chung_lu_graph(weights, rng=SEED)


def bench_graph_core(graph: Graph) -> dict:
    arr = np.asarray(graph.edge_array())
    n = graph.num_nodes
    sample = np.linspace(0, n - 1, n // 2).astype(np.int64).tolist()
    dense_cap = n <= 4000  # the scalar dense fill is O(n² + m); keep it honest but bounded

    def before():
        scalar = reference.scalar_build_graph(arr.tolist(), n)
        reference.scalar_degrees(scalar)
        reference.scalar_to_sparse_adjacency(scalar)
        if dense_cap:
            reference.scalar_to_adjacency_matrix(scalar)
        reference.scalar_subgraph(scalar, sample)

    def after():
        bulk = Graph.from_edge_array(arr, n)
        bulk.degrees()
        bulk.to_sparse_adjacency()
        if dense_cap:
            bulk.to_adjacency_matrix()
        bulk.subgraph(sample)

    before_s, _ = _timed(before)
    after_s, _ = _timed(after)
    return {"before_seconds": before_s, "after_seconds": after_s,
            "speedup": before_s / after_s if after_s > 0 else float("inf")}


def bench_tmf(graph: Graph) -> tuple[dict, Graph]:
    before_s, scalar_graph = _timed(
        lambda: TmF(vectorized=False).generate_graph(graph, EPSILON, rng=SEED)
    )
    after_s, vector_graph = _timed(
        lambda: TmF().generate_graph(graph, EPSILON, rng=SEED)
    )
    assert vector_graph == scalar_graph, "vectorized TmF diverged from the scalar path"
    return (
        {"before_seconds": before_s, "after_seconds": after_s,
         "speedup": before_s / after_s if after_s > 0 else float("inf")},
        vector_graph,
    )


def bench_queries(synthetic: Graph) -> dict:
    queries = make_default_queries()

    def before():
        return reference.scalar_query_values(synthetic)

    def after():
        context = EvaluationContext(synthetic)
        return {query.name: query.evaluate_in(context) for query in queries}

    before_s, before_values = _timed(before)
    after_s, after_values = _timed(after)
    # Sanity: the two paths must agree on every deterministic scalar query.
    for name in ("num_edges", "triangle_count", "diameter", "global_clustering"):
        assert abs(float(before_values[name]) - float(after_values[name])) < 1e-9, name
    return {"before_seconds": before_s, "after_seconds": after_s,
            "speedup": before_s / after_s if after_s > 0 else float("inf")}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="array-layer speed trajectory")
    parser.add_argument("--nodes", type=int, default=10_000)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 2000 nodes, same protocol")
    parser.add_argument("--output", default=str(Path(__file__).resolve().parent.parent / "BENCH_speed.json"))
    parser.add_argument("--min-combined-speedup", type=float, default=None,
                        help="exit non-zero when TmF + query speedup falls below this")
    args = parser.parse_args(argv)

    nodes = 2000 if args.quick else args.nodes
    graph = build_input_graph(nodes)
    print(f"input graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    layers = {}
    layers["graph_core"] = bench_graph_core(graph)
    tmf_layer, synthetic = bench_tmf(graph)
    layers["tmf_generation"] = tmf_layer
    layers["query_evaluation"] = bench_queries(synthetic)

    combined_before = (layers["tmf_generation"]["before_seconds"]
                       + layers["query_evaluation"]["before_seconds"])
    combined_after = (layers["tmf_generation"]["after_seconds"]
                      + layers["query_evaluation"]["after_seconds"])
    combined = {
        "before_seconds": combined_before,
        "after_seconds": combined_after,
        "speedup": combined_before / combined_after if combined_after > 0 else float("inf"),
    }

    payload = {
        "benchmark": "bench_speed",
        "protocol_version": 1,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "quick": bool(args.quick),
        "epsilon": EPSILON,
        "seed": SEED,
        "layers": layers,
        "combined_tmf_plus_queries": combined,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print(f"{'layer':<22} {'before':>9} {'after':>9} {'speedup':>9}")
    for name, layer in {**layers, "combined": combined}.items():
        print(f"{name:<22} {layer['before_seconds']:>8.3f}s {layer['after_seconds']:>8.3f}s "
              f"{layer['speedup']:>8.1f}x")
    print(f"wrote {args.output}")

    if args.min_combined_speedup is not None and combined["speedup"] < args.min_combined_speedup:
        print(f"FAIL: combined speedup {combined['speedup']:.1f}x "
              f"< required {args.min_combined_speedup:.1f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
