"""Table IX — empirical time cost (seconds) per algorithm and dataset.

One generation run per (algorithm, dataset) at ε = 1, exactly as in the paper.
Expected shape at any scale: DGG and DP-dK are the fastest, TmF and PrivGraph
are moderate, PrivSKG (smooth-sensitivity computation) and PrivHRG (MCMC) are
the slowest per node.
"""

from __future__ import annotations

from repro.algorithms.registry import PGB_ALGORITHM_NAMES
from repro.core.profiling import profile_algorithms, profiles_as_tables
from repro.core.report import render_resource_table
from repro.graphs.datasets import PGB_DATASET_NAMES


def test_table9_time_cost(benchmark, bench_scale, bench_seed):
    """Profile every (algorithm, dataset) pair and print the time table."""

    def profile():
        return profile_algorithms(
            PGB_ALGORITHM_NAMES, PGB_DATASET_NAMES, epsilon=1.0, scale=bench_scale, seed=bench_seed
        )

    profiles = benchmark.pedantic(profile, rounds=1, iterations=1)
    tables = profiles_as_tables(profiles)

    print("\n=== Table IX: time cost in seconds (one generation run, eps=1) ===")
    print(render_resource_table(tables["time"], value_format="{:.3f}"))

    assert len(profiles) == len(PGB_ALGORITHM_NAMES) * len(PGB_DATASET_NAMES)
    assert all(profile.seconds >= 0.0 for profile in profiles)
