"""Ablation — how the internal privacy-budget split affects utility.

The paper's principle M4 discussion notes that "minor differences in the
implementation or parameters (e.g., allocating the privacy budget in each
iteration) can have a significant impact on the overall utility".  This
ablation quantifies that for two algorithms with an explicit split parameter:

* **TmF** — fraction of ε spent on the noisy edge count vs the per-cell noise;
* **PrivGraph** — fraction spent on the community assignment vs the intra-
  community degrees vs the inter-community edge counts.

For each configuration the bench reports the mean error over a small query set
on the Facebook stand-in.  Expected shape: extreme splits (starving either
stage) are worse than balanced splits, confirming the paper's remark.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.privgraph import PrivGraph
from repro.algorithms.tmf import TmF
from repro.graphs.datasets import load_dataset
from repro.queries.registry import get_query

ABLATION_QUERIES = ("num_edges", "degree_distribution", "global_clustering", "modularity")
EPSILON = 1.0
REPEATS = 3


def _mean_error(generator, graph, queries, seed_base: int) -> float:
    errors = []
    for repeat in range(REPEATS):
        synthetic = generator.generate_graph(graph, EPSILON, rng=seed_base + repeat)
        for query in queries:
            errors.append(query.error(graph, synthetic))
    return float(np.mean(errors))


def test_ablation_budget_split(benchmark, bench_scale, bench_seed):
    """Sweep the budget-split parameters of TmF and PrivGraph."""
    graph = load_dataset("facebook", scale=bench_scale * 2, seed=bench_seed)
    queries = [get_query(name) for name in ABLATION_QUERIES]

    tmf_fractions = (0.02, 0.1, 0.3, 0.6, 0.9)
    privgraph_splits = (
        (0.1, 0.3),   # light on communities, light on degrees
        (0.2, 0.5),   # the default
        (0.4, 0.4),
        (0.7, 0.2),   # heavy on communities
    )

    def run():
        tmf_scores = {
            fraction: _mean_error(TmF(edge_count_fraction=fraction), graph, queries, bench_seed)
            for fraction in tmf_fractions
        }
        privgraph_scores = {
            split: _mean_error(
                PrivGraph(community_fraction=split[0], degree_fraction=split[1]),
                graph, queries, bench_seed,
            )
            for split in privgraph_splits
        }
        return tmf_scores, privgraph_scores

    tmf_scores, privgraph_scores = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== Ablation: TmF edge-count budget fraction (mean error, lower is better) ===")
    for fraction, score in tmf_scores.items():
        print(f"  edge_count_fraction={fraction:<5g} mean_error={score:.4f}")

    print("\n=== Ablation: PrivGraph budget split (community, degrees) ===")
    for (community, degrees), score in privgraph_scores.items():
        print(f"  community={community:<4g} degrees={degrees:<4g} "
              f"edges={1 - community - degrees:<4g} mean_error={score:.4f}")

    # Shape: the default-ish TmF split (0.1) should not be worse than the most
    # extreme split that spends 90% of the budget on the scalar edge count.
    assert tmf_scores[0.1] <= tmf_scores[0.9] * 1.5 + 0.1
    assert all(np.isfinite(score) for score in privgraph_scores.values())
