"""Table VI — details of the graph datasets.

The paper's Table VI lists, for each of the 8 benchmark graphs, the number of
nodes, the number of edges, the average clustering coefficient and the domain
type.  This bench builds every synthetic stand-in at bench scale, measures the
same statistics, and prints them next to the paper's published values.

Because the stand-ins are generated at reduced scale, node/edge counts are
proportionally smaller; the *relative ordering* of the datasets — which graph
is densest, which has the highest/lowest clustering — is what should match.
"""

from __future__ import annotations

from repro.graphs.datasets import PGB_DATASET_NAMES, get_dataset, load_dataset
from repro.graphs.properties import average_clustering_coefficient, density


def test_table6_dataset_statistics(benchmark, bench_scale, bench_seed):
    """Measure |V|, |E|, ACC of every stand-in and compare ordering with the paper."""

    def measure():
        rows = {}
        for name in PGB_DATASET_NAMES:
            graph = load_dataset(name, scale=bench_scale, seed=bench_seed)
            rows[name] = {
                "num_nodes": graph.num_nodes,
                "num_edges": graph.num_edges,
                "acc": average_clustering_coefficient(graph),
                "density": density(graph),
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    print("\n=== Table VI: dataset details (measured stand-ins vs paper values) ===")
    print(f"{'dataset':<12}{'type':<12}{'|V| paper':>10}{'|V| ours':>10}"
          f"{'|E| paper':>10}{'|E| ours':>10}{'ACC paper':>11}{'ACC ours':>10}")
    for name in PGB_DATASET_NAMES:
        info = get_dataset(name)
        row = rows[name]
        print(f"{name:<12}{info.domain:<12}{info.paper_num_nodes:>10}{row['num_nodes']:>10}"
              f"{info.paper_num_edges:>10}{row['num_edges']:>10}"
              f"{info.paper_acc:>11.4f}{row['acc']:>10.4f}")

    # Shape checks on the clustering ordering the paper's analysis relies on:
    # the social / academic graphs are strongly clustered, the road / P2P / ER /
    # BA graphs are not.
    assert rows["facebook"]["acc"] > 0.3
    assert rows["ca-hepph"]["acc"] > 0.3
    # The wiki-vote stand-in keeps a dense core, so it is clustered relative to
    # the P2P graph; at reduced scale its absolute ACC overshoots the paper's
    # 0.14 (documented in EXPERIMENTS.md), so only the ordering vs gnutella is
    # asserted here.
    assert rows["wiki-vote"]["acc"] > rows["gnutella"]["acc"]
    assert rows["minnesota"]["acc"] < 0.1
    assert rows["gnutella"]["acc"] < 0.05
    # The ER/BA graphs are far less clustered than the social/academic graphs.
    # (At reduced scale their density — and therefore their ACC — is higher
    # than the paper's full-size values, so the check is relative, not absolute.)
    assert rows["er"]["acc"] < rows["facebook"]["acc"] / 2
    assert rows["ba"]["acc"] < rows["facebook"]["acc"] / 2
    # The ER benchmark graph is the densest of the two synthetic graphs.
    assert rows["er"]["num_edges"] > rows["ba"]["num_edges"]
