"""Table VII — overall results: per-(dataset, ε) best counts over the 15 queries.

Each entry of the table counts how often an algorithm achieved the lowest
error among the 15 queries for a given dataset and privacy budget
(Definition 5).  The expected shape (not the absolute numbers, since the
datasets are synthetic stand-ins at reduced scale): TmF collects the most wins
at large ε and on the ER graph, while degree-based methods (DP-dK, DGG) are
relatively stronger at small ε on high-clustering graphs.
"""

from __future__ import annotations

from repro.core.aggregate import best_count_by_dataset, overall_win_totals
from repro.core.report import render_best_count_table, render_summary


def test_table7_overall_best_counts(benchmark, full_grid_results):
    """Aggregate the full grid into the Table VII layout and print it."""

    def aggregate():
        return best_count_by_dataset(full_grid_results)

    counts = benchmark.pedantic(aggregate, rounds=1, iterations=1)

    # Sanity: every (epsilon, dataset) column awards at least one win.
    results = full_grid_results
    for epsilon in results.epsilons():
        for dataset in results.datasets():
            total = sum(
                counts[(epsilon, dataset, algorithm)] for algorithm in results.algorithms()
            )
            assert total >= len(results.queries())

    print("\n=== Table VII: overall results (best counts per dataset and epsilon) ===")
    print(render_best_count_table(results))
    print("\n=== Overall summary ===")
    print(render_summary(results))
    print("\nTotal wins per algorithm:", overall_win_totals(results))
