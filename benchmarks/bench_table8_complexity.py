"""Table VIII — theoretical time and space complexity of the algorithms.

The table is static (it reflects the implementation choices described in the
paper's Remark 5), but the bench also verifies the published scaling shape
empirically: generation time on a 2x-larger graph should not grow by more than
the complexity class allows (with generous slack, since constants dominate at
bench scale).
"""

from __future__ import annotations

import time

from repro.algorithms.complexity import COMPLEXITY_TABLE
from repro.algorithms.registry import PGB_ALGORITHM_NAMES, get_algorithm
from repro.graphs.datasets import load_dataset


def test_table8_complexity(benchmark, bench_scale, bench_seed):
    """Print the complexity table and measure how generation time scales with size."""

    def measure_scaling():
        timings = {}
        small = load_dataset("ba", scale=bench_scale, seed=bench_seed)
        large = load_dataset("ba", scale=2 * bench_scale, seed=bench_seed)
        for name in PGB_ALGORITHM_NAMES:
            algorithm = get_algorithm(name)
            start = time.perf_counter()
            algorithm.generate_graph(small, 1.0, rng=0)
            small_time = time.perf_counter() - start
            algorithm = get_algorithm(name)
            start = time.perf_counter()
            algorithm.generate_graph(large, 1.0, rng=0)
            large_time = time.perf_counter() - start
            timings[name] = (small_time, large_time)
        return timings

    timings = benchmark.pedantic(measure_scaling, rounds=1, iterations=1)

    print("\n=== Table VIII: theoretical time and space complexity ===")
    print(f"{'algorithm':<12}{'time':<16}{'space':<12}notes")
    for name in PGB_ALGORITHM_NAMES:
        entry = COMPLEXITY_TABLE[name]
        print(f"{entry.algorithm:<12}{entry.time:<16}{entry.space:<12}{entry.notes}")

    print("\n=== Empirical scaling (1x vs 2x node count, seconds) ===")
    for name, (small_time, large_time) in timings.items():
        ratio = large_time / small_time if small_time > 0 else float("nan")
        print(f"{name:<12}{small_time:8.3f}s -> {large_time:8.3f}s   ratio {ratio:5.2f}x")

    assert set(COMPLEXITY_TABLE) == set(PGB_ALGORITHM_NAMES)
