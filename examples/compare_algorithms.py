"""Compare all six PGB algorithms on one dataset — a miniature Table VII.

Run with::

    python examples/compare_algorithms.py

The script runs the full six-algorithm line-up on the Wiki-Vote stand-in over
three privacy budgets and five queries, then prints the per-(ε) best counts
(Definition 5) and the per-query error table.
"""

from __future__ import annotations

from repro import BenchmarkSpec, run_benchmark
from repro.core.report import render_best_count_table, render_error_table, render_summary


def main() -> None:
    spec = BenchmarkSpec(
        algorithms=("dp-dk", "tmf", "privskg", "privhrg", "privgraph", "dgg"),
        datasets=("wiki-vote",),
        epsilons=(0.5, 2.0, 10.0),
        queries=(
            "num_edges",
            "degree_distribution",
            "global_clustering",
            "community_detection",
            "eigenvector_centrality",
        ),
        repetitions=2,
        scale=0.03,
        seed=7,
    )
    print(f"running {spec.num_experiments} single experiments "
          f"({len(spec.algorithms)} algorithms x {len(spec.datasets)} dataset x "
          f"{len(spec.epsilons)} budgets x {len(spec.queries)} queries x "
          f"{spec.repetitions} repetitions)...\n")

    results = run_benchmark(
        spec, progress=lambda alg, ds, eps: print(f"  generating: {alg:<10} {ds:<10} eps={eps:g}")
    )

    print("\n=== best counts per privacy budget (Definition 5) ===")
    print(render_best_count_table(results))

    print("\n=== error curves for the degree distribution ===")
    print(render_error_table(results, "degree_distribution", "wiki-vote"))

    print("\n=== summary ===")
    print(render_summary(results))


if __name__ == "__main__":
    main()
