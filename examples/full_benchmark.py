"""Run the complete PGB instantiation (Table V) and print every summary table.

Run with::

    python examples/full_benchmark.py [scale] [repetitions]

By default the dataset stand-ins are built at 2% of the paper's sizes and each
cell is repeated once, which finishes in a few minutes on a laptop.  Passing
``1.0 10`` reproduces the paper-scale grid (6 algorithms x 8 datasets x
6 budgets x 15 queries x 10 repetitions = 43,200 single experiments), which
takes many hours.
"""

from __future__ import annotations

import sys

from repro import BenchmarkSpec, run_benchmark
from repro.core.aggregate import overall_win_totals
from repro.core.report import (
    render_best_count_table,
    render_per_query_table,
    render_summary,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    repetitions = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    spec = BenchmarkSpec.paper_instantiation(scale=scale, repetitions=repetitions)
    print(f"PGB full benchmark: scale={scale}, repetitions={repetitions}, "
          f"{spec.num_experiments} single experiments\n")

    results = run_benchmark(
        spec, progress=lambda alg, ds, eps: print(f"  {alg:<10} {ds:<12} eps={eps:g}")
    )

    print("\n=== Table VII: overall results ===")
    print(render_best_count_table(results))

    print("\n=== Table XII: per-query results ===")
    print(render_per_query_table(results))

    print("\n=== Summary ===")
    print(render_summary(results))
    print("\nTotal wins:", overall_win_totals(results))


if __name__ == "__main__":
    main()
