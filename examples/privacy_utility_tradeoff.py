"""Privacy/utility trade-off curves — a miniature Figure 2.

Run with::

    python examples/privacy_utility_tradeoff.py

For one algorithm (TmF by default) and one dataset, the script sweeps the
paper's six privacy budgets and prints how the error of several queries falls
as ε grows, plus the rule-based mechanism recommendation for each regime.
"""

from __future__ import annotations

from repro import get_algorithm, load_dataset, recommend_algorithm
from repro.core.spec import PGB_EPSILONS
from repro.graphs.properties import average_clustering_coefficient
from repro.queries.registry import get_query

ALGORITHM = "tmf"
DATASET = "gnutella"
QUERIES = ("num_edges", "triangle_count", "degree_distribution", "modularity")


def main() -> None:
    graph = load_dataset(DATASET, scale=0.03, seed=0)
    queries = [get_query(name) for name in QUERIES]
    print(f"dataset: {DATASET} ({graph.num_nodes} nodes, {graph.num_edges} edges)")
    print(f"algorithm: {ALGORITHM}\n")

    header = f"{'epsilon':<10}" + "".join(f"{name:>22}" for name in QUERIES)
    print(header)
    for epsilon in PGB_EPSILONS:
        generator = get_algorithm(ALGORITHM)
        synthetic = generator.generate_graph(graph, epsilon, rng=1)
        row = f"{epsilon:<10g}"
        for query in queries:
            row += f"{query.error(graph, synthetic):>22.4f}"
        print(row)

    print("\nrule-based recommendations (paper Section VI takeaways):")
    acc = average_clustering_coefficient(graph)
    for epsilon in (0.1, 1.0, 10.0):
        recommendation = recommend_algorithm(graph.num_nodes, acc, epsilon)
        print(f"  eps={epsilon:<5g} -> {recommendation.algorithm}: {recommendation.reason}")


if __name__ == "__main__":
    main()
