"""Quickstart: generate one differentially private synthetic graph and inspect it.

Run with::

    python examples/quickstart.py

The script loads the Facebook stand-in dataset (at reduced scale so it
finishes in seconds), runs the PrivGraph generator at ε = 1, and compares a
few structural statistics of the original and synthetic graphs.
"""

from __future__ import annotations

from repro import get_algorithm, load_dataset
from repro.graphs.properties import summarize
from repro.metrics.errors import relative_error


def main() -> None:
    # 1. Load a dataset (scale < 1 shrinks the stand-in graph proportionally).
    graph = load_dataset("facebook", scale=0.05, seed=0)
    print(f"original graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # 2. Pick a differentially private generator and generate a synthetic graph.
    generator = get_algorithm("privgraph")
    result = generator.generate(graph, epsilon=1.0, rng=42)
    synthetic = result.graph
    print(f"synthetic graph: {synthetic.num_nodes} nodes, {synthetic.num_edges} edges")
    print(f"privacy guarantee: ε={result.guarantee.epsilon}, δ={result.guarantee.delta}, "
          f"model={result.guarantee.model.value}")
    print(f"budget split across stages: {result.budget_ledger}")

    # 3. Compare structural statistics.
    print("\nstatistic                       original    synthetic   relative error")
    original_stats = summarize(graph)
    synthetic_stats = summarize(synthetic)
    for name, original_value in original_stats.items():
        synthetic_value = synthetic_stats[name]
        error = relative_error(original_value, synthetic_value)
        print(f"{name:<30}{original_value:>12.4f}{synthetic_value:>12.4f}{error:>12.4f}")


if __name__ == "__main__":
    main()
