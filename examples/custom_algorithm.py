"""Plug a new differentially private generator into the PGB benchmark.

Run with::

    python examples/custom_algorithm.py

The paper's stated goal is that "future works can be included and compared
easily".  This example shows the full workflow: implement a new generator as a
``GraphGenerator`` subclass, register it, and benchmark it against two of the
built-in algorithms on the same (G, P, U) grid.

The example algorithm ("noisy-er") is deliberately simple: it releases the
noisy edge count with the Laplace mechanism and returns a G(n, m̃) random
graph.  It is a valid ε-Edge-CDP mechanism but discards all structure, so it
should lose most query comparisons — which the printed table confirms.
"""

from __future__ import annotations

from repro import BenchmarkSpec, run_benchmark
from repro.algorithms.base import GraphGenerator
from repro.algorithms.registry import register_algorithm
from repro.core.report import render_best_count_table
from repro.dp.mechanisms import LaplaceMechanism
from repro.generators.random_graphs import erdos_renyi_gnm_graph


class NoisyEdgeCountER(GraphGenerator):
    """Release the edge count with Laplace noise, then sample G(n, m̃)."""

    name = "noisy-er"

    def _generate(self, graph, budget, rng):
        epsilon = budget.spend_all_remaining(label="edge_count")
        mechanism = LaplaceMechanism(epsilon=epsilon, sensitivity=1.0)
        max_edges = graph.num_nodes * (graph.num_nodes - 1) // 2
        noisy_edges = min(mechanism.randomize_count(graph.num_edges, rng=rng), max_edges)
        self._record_diagnostics(noisy_edge_count=noisy_edges)
        return erdos_renyi_gnm_graph(graph.num_nodes, noisy_edges, rng=rng)


def main() -> None:
    register_algorithm("noisy-er", NoisyEdgeCountER, overwrite=True)

    spec = BenchmarkSpec(
        algorithms=("noisy-er", "tmf", "privgraph"),
        datasets=("facebook", "minnesota"),
        epsilons=(0.5, 5.0),
        queries=(
            "num_edges",
            "average_degree",
            "triangle_count",
            "global_clustering",
            "degree_distribution",
            "modularity",
        ),
        repetitions=2,
        scale=0.03,
        seed=3,
    )
    results = run_benchmark(spec)

    print("=== best counts: the custom algorithm vs two built-in ones ===")
    print(render_best_count_table(results))
    print("\nThe custom baseline matches the built-in algorithms on the edge count")
    print("(that is the one statistic it measures) and loses on the structural queries.")


if __name__ == "__main__":
    main()
